//! Parallel experiment execution.
//!
//! Detection attempts are embarrassingly parallel: `Detector::detect` is a
//! pure function of `(workload, seed)`, and [`run_experiment`] derives the
//! attempt seeds from the attempt index alone. [`ExperimentEngine`] exploits
//! that by fanning attempts (and whole grid cells) over a worker pool while
//! keeping the seed assignment — and therefore every simulated run — exactly
//! identical to the sequential path. Results are collected back into input
//! order, so a summary computed with `jobs = 8` is bit-for-bit the summary
//! computed with `jobs = 1`.
//!
//! [`run_experiment`]: crate::experiment::run_experiment

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;
use std::sync::Mutex;

use waffle_sim::Workload;

use crate::detector::Detector;
use crate::experiment::{summarize, ExperimentSummary};
use crate::report::DetectionOutcome;

/// Renders a caught panic payload as a message (panics carry `&str` or
/// `String` in practice; anything else gets a placeholder).
pub(crate) fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

/// Records the panic with the *lowest* work-item index — deterministic
/// regardless of which worker observed its panic first.
fn record_first_panic(slot: &Mutex<Option<(usize, String)>>, index: usize, message: String) {
    let mut guard = slot.lock().unwrap_or_else(|e| e.into_inner());
    match &*guard {
        Some((prior, _)) if *prior <= index => {}
        _ => *guard = Some((index, message)),
    }
}

/// The seed for attempt number `attempt` (0-based). Shared by the
/// sequential and parallel paths; keeping them on one formula is what
/// makes the engine's results reproducible at any job count.
pub fn attempt_seed(attempt: u32) -> u64 {
    u64::from(attempt) + 1
}

/// One `(workload, tool)` cell of an experiment grid.
#[derive(Debug, Clone)]
pub struct GridCell {
    /// The workload to run.
    pub workload: Workload,
    /// The configured detector (tool + config) to run it under.
    pub detector: Detector,
    /// Number of repetition attempts (§6.1; the paper uses 15).
    pub attempts: u32,
}

/// A worker pool that runs detection attempts and experiment grids in
/// parallel, with results identical to sequential execution.
#[derive(Debug, Clone)]
pub struct ExperimentEngine {
    jobs: usize,
}

impl Default for ExperimentEngine {
    fn default() -> Self {
        Self::with_available_parallelism()
    }
}

impl ExperimentEngine {
    /// Creates an engine with `jobs` workers (clamped to at least 1).
    pub fn new(jobs: usize) -> Self {
        ExperimentEngine {
            jobs: jobs.max(1),
        }
    }

    /// Creates an engine sized to the machine's available parallelism.
    pub fn with_available_parallelism() -> Self {
        let jobs = std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1);
        Self::new(jobs)
    }

    /// The worker count this engine fans out to.
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// Runs `attempts` detection attempts in parallel and summarizes them.
    ///
    /// Equivalent to [`run_experiment`](crate::experiment::run_experiment):
    /// attempt `a` uses seed [`attempt_seed`]`(a)` regardless of which
    /// worker executes it, and outcomes are summarized in attempt order.
    pub fn run_experiment(
        &self,
        detector: &Detector,
        workload: &Workload,
        attempts: u32,
    ) -> ExperimentSummary {
        let outcomes = self.run_attempts(detector, workload, attempts);
        summarize(detector, workload, &outcomes)
    }

    /// Runs the attempts and returns the raw outcomes in attempt order.
    ///
    /// A panicking attempt no longer aborts the pool with a bare
    /// `.expect("attempt worker panicked")`: each worker catches the
    /// payload, the remaining attempts still drain, and the panic with the
    /// lowest attempt index is resurfaced afterwards, annotated with that
    /// index and its seed.
    pub fn run_attempts(
        &self,
        detector: &Detector,
        workload: &Workload,
        attempts: u32,
    ) -> Vec<DetectionOutcome> {
        let n = attempts as usize;
        if self.jobs == 1 || n <= 1 {
            return (0..attempts)
                .map(|a| detector.detect(workload, attempt_seed(a)))
                .collect();
        }
        let mut slots: Vec<Option<DetectionOutcome>> = std::iter::repeat_with(|| None)
            .take(n)
            .collect();
        let next = AtomicUsize::new(0);
        let first_panic: Mutex<Option<(usize, String)>> = Mutex::new(None);
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..self.jobs.min(n))
                .map(|_| {
                    s.spawn(|| {
                        let mut mine = Vec::new();
                        loop {
                            let i = next.fetch_add(1, Ordering::Relaxed);
                            if i >= n {
                                break;
                            }
                            match catch_unwind(AssertUnwindSafe(|| {
                                detector.detect(workload, attempt_seed(i as u32))
                            })) {
                                Ok(outcome) => mine.push((i, outcome)),
                                // Keep draining: one bad attempt must not
                                // discard the others' work.
                                Err(p) => record_first_panic(
                                    &first_panic,
                                    i,
                                    panic_message(p.as_ref()),
                                ),
                            }
                        }
                        mine
                    })
                })
                .collect();
            for h in handles {
                let mine = h
                    .join()
                    .expect("attempt worker panicked outside the detect boundary");
                for (i, outcome) in mine {
                    slots[i] = Some(outcome);
                }
            }
        });
        if let Some((i, msg)) = first_panic.into_inner().unwrap_or_else(|e| e.into_inner()) {
            panic!(
                "attempt {i} (seed {}) panicked: {msg}",
                attempt_seed(i as u32)
            );
        }
        slots
            .into_iter()
            .map(|o| o.expect("every attempt index was claimed"))
            .collect()
    }

    /// Runs every grid cell and returns the summaries in cell order.
    ///
    /// Cells are distributed over the worker pool; each worker streams its
    /// finished summaries through a bounded channel and the caller's thread
    /// stitches them back into input order. Within a cell the attempts run
    /// sequentially with the standard seed assignment, so each summary is
    /// identical to what [`run_experiment`](Self::run_experiment) — or the
    /// sequential free function — produces for that cell alone.
    ///
    /// A panicking cell used to surface as the misleading
    /// `.expect("every grid cell was claimed")` on the unfilled slots (the
    /// real payload was swallowed by the join). Now the payload is caught
    /// at the cell boundary, the remaining cells still drain, and the
    /// panic with the lowest cell index is resurfaced with the cell's
    /// identity. Callers that must *survive* a panicking cell instead of
    /// re-panicking want the checkpointing
    /// [`Campaign`](crate::campaign::Campaign) runner, which quarantines it.
    pub fn run_grid(&self, cells: &[GridCell]) -> Vec<ExperimentSummary> {
        let n = cells.len();
        if n == 0 {
            return Vec::new();
        }
        if self.jobs == 1 || n == 1 {
            return cells
                .iter()
                .map(|c| {
                    let outcomes: Vec<DetectionOutcome> = (0..c.attempts)
                        .map(|a| c.detector.detect(&c.workload, attempt_seed(a)))
                        .collect();
                    summarize(&c.detector, &c.workload, &outcomes)
                })
                .collect();
        }
        // Bounded to the worker count: a fast worker blocks rather than
        // buffering unboundedly ahead of the collector.
        let (tx, rx) = mpsc::sync_channel::<(usize, ExperimentSummary)>(self.jobs);
        let next = AtomicUsize::new(0);
        let first_panic: Mutex<Option<(usize, String)>> = Mutex::new(None);
        let mut slots: Vec<Option<ExperimentSummary>> =
            std::iter::repeat_with(|| None).take(n).collect();
        std::thread::scope(|s| {
            for _ in 0..self.jobs.min(n) {
                let tx = tx.clone();
                let next = &next;
                let first_panic = &first_panic;
                s.spawn(move || loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    let Some(cell) = cells.get(i) else {
                        break;
                    };
                    let summary = catch_unwind(AssertUnwindSafe(|| {
                        let outcomes: Vec<DetectionOutcome> = (0..cell.attempts)
                            .map(|a| cell.detector.detect(&cell.workload, attempt_seed(a)))
                            .collect();
                        summarize(&cell.detector, &cell.workload, &outcomes)
                    }));
                    match summary {
                        Ok(summary) => {
                            if tx.send((i, summary)).is_err() {
                                break;
                            }
                        }
                        // Keep draining the remaining cells.
                        Err(p) => record_first_panic(first_panic, i, panic_message(p.as_ref())),
                    }
                });
            }
            drop(tx);
            for (i, summary) in rx {
                slots[i] = Some(summary);
            }
        });
        if let Some((i, msg)) = first_panic.into_inner().unwrap_or_else(|e| e.into_inner()) {
            let cell = &cells[i];
            panic!(
                "grid cell {i} ({} / {}) panicked: {msg}",
                cell.workload.name,
                cell.detector.tool().name()
            );
        }
        slots
            .into_iter()
            .map(|s| s.expect("every grid cell was claimed"))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::detector::{DetectorConfig, Tool};
    use waffle_sim::{SimTime, WorkloadBuilder};

    fn racy(name: &str) -> Workload {
        let mut b = WorkloadBuilder::new(name);
        let o = b.object("o");
        let started = b.event("s");
        let worker = b.script("worker", move |s| {
            s.wait(started)
                .compute(SimTime::from_us(150))
                .use_(o, "W.use:1", SimTime::from_us(10));
        });
        let main = b.script("main", move |s| {
            s.init(o, "M.init:1", SimTime::from_us(10))
                .fork(worker)
                .signal(started)
                .compute(SimTime::from_us(700))
                .dispose(o, "M.dispose:9", SimTime::from_us(10))
                .join_children();
        });
        b.main(main);
        b.build()
    }

    #[test]
    fn engine_matches_sequential_summary() {
        let det = Detector::new(Tool::waffle());
        let w = racy("engine.racy");
        let sequential = crate::experiment::run_experiment(&det, &w, 8);
        for jobs in [1, 2, 4] {
            let parallel = ExperimentEngine::new(jobs).run_experiment(&det, &w, 8);
            assert_eq!(parallel, sequential, "jobs = {jobs}");
        }
    }

    #[test]
    fn grid_preserves_cell_order() {
        let cells: Vec<GridCell> = (0..6)
            .map(|i| GridCell {
                workload: racy(&format!("engine.grid{i}")),
                detector: Detector::with_config(
                    Tool::waffle(),
                    DetectorConfig {
                        max_detection_runs: 6,
                        ..DetectorConfig::default()
                    },
                ),
                attempts: 3,
            })
            .collect();
        let summaries = ExperimentEngine::new(4).run_grid(&cells);
        assert_eq!(summaries.len(), cells.len());
        for (i, s) in summaries.iter().enumerate() {
            assert_eq!(s.workload, format!("engine.grid{i}"));
        }
    }

    /// Satellite regression: a panicking attempt worker used to abort the
    /// whole pool with `.expect("attempt worker panicked")`. The payload
    /// must now resurface annotated with the attempt index and seed.
    #[test]
    fn attempt_panic_resurfaces_with_its_index() {
        let det = Detector::with_config(
            Tool::waffle(),
            DetectorConfig {
                max_detection_runs: 4,
                panic_on_seed: Some(attempt_seed(2)),
                ..DetectorConfig::default()
            },
        );
        let w = racy("engine.panic");
        let caught = std::panic::catch_unwind(AssertUnwindSafe(|| {
            ExperimentEngine::new(4).run_attempts(&det, &w, 6)
        }))
        .expect_err("the panic must propagate");
        let msg = panic_message(caught.as_ref());
        assert!(msg.contains("attempt 2"), "index surfaced: {msg}");
        assert!(msg.contains("fault injection"), "payload surfaced: {msg}");
    }

    /// Satellite regression: a panicking grid cell used to die on the
    /// misleading `.expect("every grid cell was claimed")`. The payload
    /// must now resurface with the cell index and identity, after the
    /// remaining cells drained.
    #[test]
    fn grid_cell_panic_resurfaces_with_cell_identity() {
        let mut cells: Vec<GridCell> = (0..4)
            .map(|i| GridCell {
                workload: racy(&format!("engine.gridpanic{i}")),
                detector: Detector::with_config(
                    Tool::waffle(),
                    DetectorConfig {
                        max_detection_runs: 4,
                        ..DetectorConfig::default()
                    },
                ),
                attempts: 2,
            })
            .collect();
        cells[1].detector = Detector::with_config(
            Tool::waffle(),
            DetectorConfig {
                max_detection_runs: 4,
                panic_on_seed: Some(attempt_seed(0)),
                ..DetectorConfig::default()
            },
        );
        let caught = std::panic::catch_unwind(AssertUnwindSafe(|| {
            ExperimentEngine::new(4).run_grid(&cells)
        }))
        .expect_err("the panic must propagate");
        let msg = panic_message(caught.as_ref());
        assert!(msg.contains("grid cell 1"), "cell index surfaced: {msg}");
        assert!(msg.contains("engine.gridpanic1"), "cell identity surfaced: {msg}");
        assert!(msg.contains("fault injection"), "payload surfaced: {msg}");
    }

    /// When several workers panic, the *lowest* index wins — a
    /// deterministic report regardless of worker scheduling.
    #[test]
    fn first_panic_is_the_lowest_index() {
        let slot = Mutex::new(None);
        record_first_panic(&slot, 5, "five".into());
        record_first_panic(&slot, 2, "two".into());
        record_first_panic(&slot, 7, "seven".into());
        assert_eq!(slot.into_inner().unwrap(), Some((2, "two".into())));
    }

    #[test]
    fn zero_attempts_and_empty_grids_are_fine() {
        let det = Detector::new(Tool::waffle());
        let w = racy("engine.empty");
        let summary = ExperimentEngine::new(4).run_experiment(&det, &w, 0);
        assert_eq!(summary.attempts, 0);
        assert!(ExperimentEngine::new(4).run_grid(&[]).is_empty());
    }
}
