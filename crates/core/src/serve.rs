//! `waffle serve`: a long-running trace ingestion server.
//!
//! The batch pipeline records a whole trace, indexes it, and analyzes it
//! in one process. `serve` inverts that: traced programs *stream* their
//! events to a resident server over a Unix socket as length-prefixed
//! binary frames ([`waffle_trace::wire`]), and the server builds each
//! session's columnar index incrementally — sealing full columns into
//! generation segment files, folding every sealed generation into a
//! running [`IncrementalAnalysis`], and answering the session's Finish
//! frame with the same report a one-shot `waffle analyze` would produce
//! over the concatenated trace (byte-identity pinned by
//! `tests/serve_equivalence.rs`).
//!
//! # Session lifecycle
//!
//! ```text
//! client: Hello  Sites*  Clocks*  Events* … Finish
//! server:                                          Report | Error
//! ```
//!
//! Per connection the server runs **two** threads joined by a bounded
//! [`SessionQueue`]:
//!
//! - the *reader* decodes frames off the socket and enqueues them;
//! - the *worker* drains the queue, validates each frame against the
//!   session's [`SessionIndexBuilder`], seals a generation every
//!   [`ServeOptions::seal_events`] accepted events, and absorbs the fresh
//!   columns into the session's incremental fold.
//!
//! On Finish the worker seals the remainder, compacts the generation
//! files into one canonical segment file
//! ([`waffle_trace::compact_segments`]), finalizes the fold (the
//! interference pass streams from the compacted file — its windows cross
//! seal boundaries), writes the report atomically next to the segment
//! file, and sends it back as a Report frame.
//!
//! # Backpressure
//!
//! The queue is bounded in **events** ([`ServeOptions::queue_events`]),
//! never in frames, so a fast client cannot grow server memory without
//! limit. When an Events batch would overflow the bound:
//!
//! - [`QueuePolicy::Block`] (default): the reader blocks until the worker
//!   drains — the unread socket fills and the kernel's flow control
//!   throttles the client. Lossless.
//! - [`QueuePolicy::Shed`]: the batch is dropped and counted — globally
//!   (`ingest/shed_batches`, `ingest/shed_events`) *and* per session, so
//!   the session's own report discloses how many batches/events were
//!   dropped (a `"shed"` object, present only when something was).
//!   Lossy by design, for load-shedding telemetry ingest where a
//!   complete report matters less than a live server.
//!
//! Control frames (Hello/Sites/Clocks/Finish) always block rather than
//! shed — dropping one would corrupt the session, not just thin it.

use std::collections::VecDeque;
use std::fs;
use std::io;
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Condvar, Mutex};
use std::thread;

use waffle_analysis::{
    IncrementalAnalysis, Plan, TsvPlan, DEFAULT_RESIDENT_BYTES,
};
use waffle_sim::time::ms;
use waffle_telemetry::MetricsRegistry;
use waffle_trace::{
    compact_segments, read_frame, write_frame, Frame, SegmentReader, SessionIndexBuilder, Trace,
};

use crate::storage::write_atomic;

/// What to do when an Events batch would overflow the session queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueuePolicy {
    /// Block the reader until the worker drains; socket flow control
    /// throttles the client. Lossless (the default).
    Block,
    /// Drop the batch and count it, globally (`ingest/shed_batches`,
    /// `ingest/shed_events`) and in the session's own report. Lossy.
    Shed,
}

/// Configuration for one [`serve`] run.
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Unix socket path to listen on (an existing socket file is
    /// replaced).
    pub socket: PathBuf,
    /// Directory for per-session segment files and reports.
    pub dir: PathBuf,
    /// Accepted events per session that trigger a generation seal.
    pub seal_events: usize,
    /// Session queue bound, in events.
    pub queue_events: usize,
    /// Overflow policy for Events batches.
    pub policy: QueuePolicy,
    /// Shards for the incremental sweep (like `analyze --jobs`).
    pub jobs: usize,
    /// Stop accepting after this many sessions (`None` = run forever).
    /// Already-accepted sessions always run to completion.
    pub max_sessions: Option<usize>,
    /// Resident budget for the finish-time streaming interference pass.
    pub resident_bytes: u64,
}

impl ServeOptions {
    /// Defaults: seal every 64k events, queue bound 256k events, Block
    /// policy, single-shard sweeps, default streaming budget.
    pub fn new(socket: impl Into<PathBuf>, dir: impl Into<PathBuf>) -> Self {
        Self {
            socket: socket.into(),
            dir: dir.into(),
            seal_events: 64 << 10,
            queue_events: 256 << 10,
            policy: QueuePolicy::Block,
            jobs: 1,
            max_sessions: None,
            resident_bytes: DEFAULT_RESIDENT_BYTES,
        }
    }
}

/// What one [`serve`] run did (returned once the accept loop ends).
#[derive(Debug, Clone)]
pub struct ServeReport {
    /// Sessions accepted.
    pub sessions: u64,
    /// Ingest counters and queue-depth histograms: `ingest/events`,
    /// `ingest/sessions`, `ingest/sealed_segments`, `ingest/shed_batches`,
    /// `ingest/shed_events`, `ingest/failed_sessions`,
    /// `ingest/queue_depth` (histogram).
    pub metrics: MetricsRegistry,
}

fn invalid(what: impl std::fmt::Display) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, what.to_string())
}

/// The canonical serve/`--plan-only` report serialization: exactly the
/// plan and TSV objects, in the same composite style as
/// `waffle analyze --json` (which additionally embeds index stats).
pub fn session_report_json(plan: &Plan, tsv: &TsvPlan) -> io::Result<String> {
    session_report_json_with_shed(plan, tsv, &ShedCounts::default())
}

/// [`session_report_json`] for a session that may have shed batches
/// under [`QueuePolicy::Shed`]. A lossy report must say so *in the
/// report*: the global `ingest/shed_batches` counter tells the operator
/// the server shed, but not which session's plan is missing events. The
/// `"shed"` object appears only when something was actually dropped, so
/// lossless sessions stay byte-identical to the batch `--plan-only`
/// output the CI smoke diff pins.
pub fn session_report_json_with_shed(
    plan: &Plan,
    tsv: &TsvPlan,
    shed: &ShedCounts,
) -> io::Result<String> {
    let (batches, events) = shed.totals();
    let shed_part = if batches > 0 {
        format!(",\n\"shed\": {{\"batches\": {batches}, \"events\": {events}}}")
    } else {
        String::new()
    };
    Ok(format!(
        "{{\n\"plan\": {},\n\"tsv\": {}{shed_part}\n}}",
        plan.to_json().map_err(invalid)?,
        tsv.to_json().map_err(invalid)?
    ))
}

/// Per-session shed totals, shared between the reader (which drops the
/// batches) and the worker (which discloses them in the report).
#[derive(Debug, Default)]
pub struct ShedCounts {
    batches: std::sync::atomic::AtomicU64,
    events: std::sync::atomic::AtomicU64,
}

impl ShedCounts {
    fn record(&self, events: u64) {
        use std::sync::atomic::Ordering;
        self.batches.fetch_add(1, Ordering::SeqCst);
        self.events.fetch_add(events, Ordering::SeqCst);
    }

    /// `(batches, events)` dropped so far.
    pub fn totals(&self) -> (u64, u64) {
        use std::sync::atomic::Ordering;
        (
            self.batches.load(Ordering::SeqCst),
            self.events.load(Ordering::SeqCst),
        )
    }
}

/// Outcome of one queue push.
enum Push {
    /// Enqueued; carries the post-push depth in events.
    Queued(usize),
    /// Dropped under [`QueuePolicy::Shed`].
    Shed,
    /// The worker is gone; the reader should stop.
    Closed,
}

struct QueueState {
    items: VecDeque<(io::Result<Frame>, usize)>,
    used: usize,
    /// Reader finished (Finish seen, EOF, or error pushed).
    input_done: bool,
    /// Worker exited; pushes bounce.
    closed: bool,
}

/// A bounded MPSC-of-one queue of frames, measured in events: an Events
/// frame costs its batch length (min 1), control frames cost 1. Built on
/// `std` primitives (the vendored `parking_lot` stub has no `Condvar`).
struct SessionQueue {
    state: Mutex<QueueState>,
    space: Condvar,
    ready: Condvar,
    capacity: usize,
}

impl SessionQueue {
    fn new(capacity: usize) -> Self {
        Self {
            state: Mutex::new(QueueState {
                items: VecDeque::new(),
                used: 0,
                input_done: false,
                closed: false,
            }),
            space: Condvar::new(),
            ready: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    fn cost(frame: &io::Result<Frame>) -> usize {
        match frame {
            Ok(Frame::Events(events)) => events.len().max(1),
            _ => 1,
        }
    }

    /// Enqueues one frame. `may_shed` selects the overflow behavior
    /// (true only for Events batches under [`QueuePolicy::Shed`]). A
    /// frame larger than the whole capacity is admitted once the queue is
    /// empty, so an oversized batch degrades to rendezvous rather than
    /// deadlock.
    fn push(&self, frame: io::Result<Frame>, may_shed: bool) -> Push {
        let cost = Self::cost(&frame);
        let mut st = self.state.lock().expect("queue poisoned");
        loop {
            if st.closed {
                return Push::Closed;
            }
            if st.used + cost <= self.capacity || st.items.is_empty() {
                st.used += cost;
                st.items.push_back((frame, cost));
                let depth = st.used;
                self.ready.notify_one();
                return Push::Queued(depth);
            }
            if may_shed {
                return Push::Shed;
            }
            st = self.space.wait(st).expect("queue poisoned");
        }
    }

    /// Marks the input side done (reader exiting) and wakes the worker.
    fn finish_input(&self) {
        self.state.lock().expect("queue poisoned").input_done = true;
        self.ready.notify_one();
    }

    /// Marks the consumer gone and unblocks any waiting reader.
    fn close(&self) {
        self.state.lock().expect("queue poisoned").closed = true;
        self.space.notify_all();
        self.ready.notify_all();
    }

    /// Dequeues the next frame; `None` once the input side is done and
    /// the queue drained.
    fn pop(&self) -> Option<io::Result<Frame>> {
        let mut st = self.state.lock().expect("queue poisoned");
        loop {
            if let Some((frame, cost)) = st.items.pop_front() {
                st.used -= cost;
                self.space.notify_one();
                return Some(frame);
            }
            if st.input_done || st.closed {
                return None;
            }
            st = self.ready.wait(st).expect("queue poisoned");
        }
    }
}

type SharedMetrics = Arc<Mutex<MetricsRegistry>>;

fn metric(metrics: &SharedMetrics, f: impl FnOnce(&mut MetricsRegistry)) {
    f(&mut metrics.lock().expect("metrics poisoned"));
}

/// The reader half of one session: socket frames into the queue until
/// Finish, EOF, or a decode error (which is forwarded to the worker).
fn read_into_queue(
    mut stream: UnixStream,
    queue: &SessionQueue,
    policy: QueuePolicy,
    metrics: &SharedMetrics,
    shed: &ShedCounts,
) {
    loop {
        match read_frame(&mut stream) {
            Ok(Some(frame)) => {
                let is_finish = matches!(frame, Frame::Finish { .. });
                let may_shed =
                    policy == QueuePolicy::Shed && matches!(frame, Frame::Events(_));
                // Captured before push consumes the frame; only a shed
                // outcome reads it.
                let batch_events = match &frame {
                    Frame::Events(events) => events.len() as u64,
                    _ => 0,
                };
                match queue.push(Ok(frame), may_shed) {
                    Push::Queued(depth) => {
                        metric(metrics, |m| {
                            m.observe_value("ingest/queue_depth", depth as u64)
                        });
                    }
                    Push::Shed => {
                        shed.record(batch_events);
                        metric(metrics, |m| {
                            m.inc("ingest/shed_batches", 1);
                            m.inc("ingest/shed_events", batch_events);
                        });
                    }
                    Push::Closed => break,
                }
                if is_finish {
                    break;
                }
            }
            Ok(None) => break,
            Err(e) => {
                let _ = queue.push(Err(e), false);
                break;
            }
        }
    }
    queue.finish_input();
}

/// The worker half: drains the queue into a [`SessionIndexBuilder`],
/// sealing and absorbing as thresholds pass; returns the session's report
/// JSON once Finish lands.
fn drain_session(
    id: u64,
    queue: &SessionQueue,
    opts: &ServeOptions,
    metrics: &SharedMetrics,
    shed: &ShedCounts,
) -> io::Result<String> {
    let mut builder: Option<SessionIndexBuilder> = None;
    let mut fold: Option<IncrementalAnalysis> = None;
    let mut generations: Vec<PathBuf> = Vec::new();
    let gen_dir = opts.dir.join(format!("session-{id}.gen"));

    let seal = |b: &mut SessionIndexBuilder,
                    fold: &mut IncrementalAnalysis,
                    generations: &mut Vec<PathBuf>|
     -> io::Result<()> {
        if generations.is_empty() {
            fs::create_dir_all(&gen_dir)?;
        }
        let path = gen_dir.join(format!("gen-{}.wseg", b.generations()));
        let out = b.seal(&path)?;
        fold.absorb(&out.mem, &out.tsv, b.clocks(), b.last_time(), opts.jobs);
        metric(metrics, |m| {
            m.inc("ingest/sealed_segments", out.stats.segments as u64);
            m.inc("ingest/sealed_generations", 1);
        });
        generations.push(path);
        Ok(())
    };

    loop {
        let frame = match queue.pop() {
            Some(frame) => frame?,
            None => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "session ended before Finish",
                ))
            }
        };
        match frame {
            Frame::Hello { workload } => {
                if builder.is_some() {
                    return Err(invalid("duplicate Hello"));
                }
                builder = Some(SessionIndexBuilder::new(workload));
                fold = Some(IncrementalAnalysis::new(Default::default(), ms(1)));
                metric(metrics, |m| m.inc("ingest/sessions", 1));
            }
            Frame::Sites(defs) => {
                let b = builder.as_mut().ok_or_else(|| invalid("Sites before Hello"))?;
                b.add_sites(&defs)?;
            }
            Frame::Clocks(snaps) => {
                let b = builder.as_mut().ok_or_else(|| invalid("Clocks before Hello"))?;
                b.add_clocks(snaps)?;
            }
            Frame::Events(events) => {
                let b = builder.as_mut().ok_or_else(|| invalid("Events before Hello"))?;
                let n = events.len() as u64;
                b.push_batch(events)?;
                metric(metrics, |m| m.inc("ingest/events", n));
                if b.pending_events() >= opts.seal_events {
                    seal(b, fold.as_mut().expect("fold exists with builder"), &mut generations)?;
                }
            }
            Frame::Finish { end_time } => {
                let mut b = builder.take().ok_or_else(|| invalid("Finish before Hello"))?;
                let mut fold = fold.take().expect("fold exists with builder");
                b.declare_end_time(end_time);
                // Seal the remainder — and always at least once, so even
                // an event-free session compacts to a valid empty file.
                if b.pending_events() > 0 || generations.is_empty() {
                    seal(&mut b, &mut fold, &mut generations)?;
                }
                let compacted = opts.dir.join(format!("session-{id}.wseg"));
                compact_segments(&generations, &compacted)?;
                let _ = fs::remove_dir_all(&gen_dir);
                let mut reader = SegmentReader::open(&compacted)?;
                let (plan, tsv) =
                    fold.finish(b.workload(), Some(&mut reader), opts.resident_bytes)?;
                // Any shed Events frame for this session was enqueued (or
                // dropped) before its Finish, so the totals are complete
                // by the time Finish reaches the worker.
                let json = session_report_json_with_shed(&plan, &tsv, shed)?;
                write_atomic(&opts.dir.join(format!("session-{id}.report.json")), &json)?;
                return Ok(json);
            }
            Frame::Report(_) | Frame::Error(_) => {
                return Err(invalid("client sent a server-only frame"));
            }
        }
    }
}

/// Runs one accepted connection end to end: spawns the reader, drains the
/// session, answers with Report or Error.
fn handle_session(stream: UnixStream, id: u64, opts: &ServeOptions, metrics: &SharedMetrics) {
    let queue = Arc::new(SessionQueue::new(opts.queue_events));
    let shed = Arc::new(ShedCounts::default());
    let mut write_half = match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    };
    let reader = {
        let queue = Arc::clone(&queue);
        let metrics = Arc::clone(metrics);
        let shed = Arc::clone(&shed);
        let policy = opts.policy;
        thread::spawn(move || read_into_queue(stream, &queue, policy, &metrics, &shed))
    };
    let outcome = drain_session(id, &queue, opts, metrics, &shed);
    queue.close();
    let reply = match outcome {
        Ok(json) => Frame::Report(json),
        Err(e) => {
            metric(metrics, |m| m.inc("ingest/failed_sessions", 1));
            Frame::Error(e.to_string())
        }
    };
    let _ = write_frame(&mut write_half, &reply);
    let _ = reader.join();
}

/// Binds the socket and serves sessions until
/// [`ServeOptions::max_sessions`] connections have been handled (or
/// forever when `None`).
pub fn serve(opts: &ServeOptions) -> io::Result<ServeReport> {
    fs::create_dir_all(&opts.dir)?;
    if opts.socket.exists() {
        fs::remove_file(&opts.socket)?;
    }
    let listener = UnixListener::bind(&opts.socket)?;
    let metrics: SharedMetrics = Arc::new(Mutex::new(MetricsRegistry::new()));
    let mut accepted = 0u64;
    thread::scope(|s| -> io::Result<()> {
        loop {
            if let Some(max) = opts.max_sessions {
                if accepted >= max as u64 {
                    break;
                }
            }
            let (stream, _) = listener.accept()?;
            accepted += 1;
            let id = accepted;
            let metrics = Arc::clone(&metrics);
            s.spawn(move || handle_session(stream, id, opts, &metrics));
        }
        Ok(())
    })?;
    let _ = fs::remove_file(&opts.socket);
    let metrics = metrics.lock().expect("metrics poisoned").clone();
    Ok(ServeReport {
        sessions: accepted,
        metrics,
    })
}

/// Streams a recorded [`Trace`] to a serve socket as one session —
/// Hello, the full site table, the interned clock pool, Events in
/// `batch`-sized frames, Finish — and returns the server's report JSON.
///
/// This is the reference client (`waffle ingest` wraps it); a real
/// runtime would emit the same frames while the program runs.
pub fn replay_trace(socket: &Path, trace: &Trace, batch: usize) -> io::Result<String> {
    let mut stream = UnixStream::connect(socket)?;
    write_frame(
        &mut stream,
        &Frame::Hello {
            workload: trace.workload.clone(),
        },
    )?;
    let sites: Vec<_> = trace
        .sites
        .iter()
        .map(|(_, info)| (info.name.clone(), info.kind))
        .collect();
    write_frame(&mut stream, &Frame::Sites(sites))?;
    let snaps = trace.clocks.snapshots();
    if snaps.len() > 1 {
        write_frame(&mut stream, &Frame::Clocks(snaps[1..].to_vec()))?;
    }
    for chunk in trace.events.chunks(batch.max(1)) {
        write_frame(&mut stream, &Frame::Events(chunk.to_vec()))?;
    }
    write_frame(&mut stream, &Frame::Finish { end_time: trace.end_time })?;
    loop {
        match read_frame(&mut stream)? {
            Some(Frame::Report(json)) => return Ok(json),
            Some(Frame::Error(message)) => {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("session rejected: {message}"),
                ))
            }
            Some(_) => continue,
            None => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "server closed the stream without a report",
                ))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn queue_blocks_at_capacity_and_drains_in_order() {
        let q = Arc::new(SessionQueue::new(3));
        // Fill to capacity with control frames.
        for _ in 0..3 {
            assert!(matches!(
                q.push(Ok(Frame::Finish { end_time: waffle_sim::SimTime::ZERO }), false),
                Push::Queued(_)
            ));
        }
        // A blocking push parks until the consumer drains.
        let q2 = Arc::clone(&q);
        let t = thread::spawn(move || {
            q2.push(Ok(Frame::Hello { workload: "late".into() }), false)
        });
        thread::sleep(std::time::Duration::from_millis(20));
        assert!(!t.is_finished(), "push must block while full");
        assert!(q.pop().is_some());
        assert!(matches!(t.join().unwrap(), Push::Queued(_)));
        // Shed-eligible pushes bounce instead of blocking.
        for _ in 0..3 {
            let _ = q.pop();
        }
        for _ in 0..3 {
            let _ = q.push(Ok(Frame::Finish { end_time: waffle_sim::SimTime::ZERO }), false);
        }
        assert!(matches!(q.push(Ok(Frame::Events(vec![])), true), Push::Shed));
        // Close unblocks and bounces everything.
        q.close();
        assert!(matches!(q.push(Ok(Frame::Events(vec![])), false), Push::Closed));
    }

    #[test]
    fn oversized_batches_rendezvous_instead_of_deadlocking() {
        let q = SessionQueue::new(2);
        // Cost 5 > capacity 2, but the queue is empty: admitted.
        let events = vec![
            waffle_trace::TraceEvent {
                time: waffle_sim::SimTime::ZERO,
                thread: waffle_sim::ThreadId(0),
                site: waffle_mem::SiteId(0),
                obj: waffle_mem::ObjectId(0),
                kind: waffle_mem::AccessKind::Init,
                dyn_index: 0,
                clock: waffle_trace::ClockId::EMPTY,
            };
            5
        ];
        assert!(matches!(q.push(Ok(Frame::Events(events)), false), Push::Queued(5)));
        assert!(q.pop().is_some());
    }
}
