//! On-disk session state: what the real tool persists between processes.
//!
//! Waffle's runs are separate processes: the preparation run writes the
//! trace; the analyzer writes the plan (`S`, `I`, delay lengths); each
//! detection run loads the plan and the current injection probabilities
//! and writes the updated probabilities back (§5). A [`Session`] wraps a
//! directory with those artifacts plus rendered bug reports.

use std::fs;
use std::io;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use waffle_analysis::Plan;
use waffle_inject::DecayState;
use waffle_trace::Trace;

use crate::report::BugReport;

/// Writes `contents` to `path` atomically: the bytes land in a uniquely
/// named sibling temp file first and are renamed into place, so a crash
/// mid-write leaves either the previous artifact or none — never a
/// truncated JSON file that poisons every later load.
pub(crate) fn write_atomic(path: &Path, contents: &str) -> io::Result<()> {
    static TMP_SEQ: AtomicU64 = AtomicU64::new(0);
    let file_name = path
        .file_name()
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "path has no file name"))?
        .to_string_lossy()
        .into_owned();
    let tmp = path.with_file_name(format!(
        ".{file_name}.tmp.{}.{}",
        std::process::id(),
        TMP_SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    fs::write(&tmp, contents)?;
    fs::rename(&tmp, path).inspect_err(|_| {
        let _ = fs::remove_file(&tmp);
    })
}

/// Wraps a JSON parse failure as a *corrupt artifact* error, distinct from
/// the absent-artifact case (`Ok(None)` from the loaders): the file exists
/// but does not parse, typically a partial write by a crashed process.
pub(crate) fn corrupt(name: &str, e: serde_json::Error) -> io::Error {
    io::Error::new(
        io::ErrorKind::InvalidData,
        format!("{name}: corrupt artifact (partial write or wrong format): {e}"),
    )
}

/// A session directory holding one workload's cross-run state.
#[derive(Debug, Clone)]
pub struct Session {
    dir: PathBuf,
}

impl Session {
    /// Opens (creating if needed) a session directory.
    pub fn open(dir: impl Into<PathBuf>) -> io::Result<Self> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        Ok(Self { dir })
    }

    /// The session's directory.
    pub fn path(&self) -> &Path {
        &self.dir
    }

    fn file(&self, name: &str) -> PathBuf {
        self.dir.join(name)
    }

    /// Persists the preparation-run trace (atomically; see [`write_atomic`]).
    pub fn save_trace(&self, trace: &Trace) -> io::Result<()> {
        write_atomic(&self.file("trace.json"), &trace.to_json().map_err(to_io)?)
    }

    /// Loads the preparation-run trace: `Ok(None)` when never saved, a
    /// distinct [`io::ErrorKind::InvalidData`] error when the file exists
    /// but is corrupt.
    pub fn load_trace(&self) -> io::Result<Option<Trace>> {
        read_opt(&self.file("trace.json"))?
            .map(|s| Trace::from_json(&s).map_err(|e| corrupt("trace.json", e)))
            .transpose()
    }

    /// Persists the analysis plan (atomically; see [`write_atomic`]).
    pub fn save_plan(&self, plan: &Plan) -> io::Result<()> {
        write_atomic(&self.file("plan.json"), &plan.to_json().map_err(to_io)?)
    }

    /// Loads the analysis plan: `Ok(None)` when never saved, a distinct
    /// corrupt-artifact error when the file exists but does not parse. The
    /// session stays recoverable: re-saving the plan (re-preparation)
    /// replaces the corrupt file.
    pub fn load_plan(&self) -> io::Result<Option<Plan>> {
        read_opt(&self.file("plan.json"))?
            .map(|s| Plan::from_json(&s).map_err(|e| corrupt("plan.json", e)))
            .transpose()
    }

    /// Persists the injection probabilities after a detection run (§5:
    /// "saved on disk and used to bootstrap the next detection run").
    /// Atomic, so a killed detection run never truncates the decay state.
    pub fn save_decay(&self, decay: &DecayState) -> io::Result<()> {
        write_atomic(&self.file("decay.json"), &decay.to_json().map_err(to_io)?)
    }

    /// Loads the injection probabilities, defaulting to a fresh state when
    /// never saved; a corrupt file is a distinct error, not a silent reset.
    pub fn load_decay(&self) -> io::Result<DecayState> {
        Ok(match read_opt(&self.file("decay.json"))? {
            Some(s) => DecayState::from_json(&s).map_err(|e| corrupt("decay.json", e))?,
            None => DecayState::default(),
        })
    }

    /// Appends a rendered bug report (one file per bug, numbered).
    ///
    /// Safe across *processes* sharing the session directory, not just
    /// threads: the number is claimed with `O_CREAT|O_EXCL`
    /// ([`fs::OpenOptions::create_new`]) in a retry loop, so two writers
    /// can never pick the same report number and silently overwrite each
    /// other the way a count-then-`fs::write` scheme could.
    pub fn save_report(&self, report: &BugReport, rendered: &str) -> io::Result<PathBuf> {
        let mut body = String::new();
        body.push_str(rendered);
        body.push_str("\n--- json ---\n");
        body.push_str(&serde_json::to_string_pretty(report).map_err(to_io)?);
        // Start probing at count + 1; holes never form because numbers are
        // only ever claimed contiguously upward.
        let mut n = fs::read_dir(&self.dir)?
            .filter_map(Result::ok)
            .filter(|e| e.file_name().to_string_lossy().starts_with("bug-"))
            .count()
            + 1;
        loop {
            let path = self.file(&format!("bug-{n:03}.txt"));
            match fs::OpenOptions::new()
                .write(true)
                .create_new(true)
                .open(&path)
            {
                Ok(mut f) => {
                    f.write_all(body.as_bytes())?;
                    return Ok(path);
                }
                Err(e) if e.kind() == io::ErrorKind::AlreadyExists => n += 1,
                Err(e) => return Err(e),
            }
        }
    }

    /// Removes all persisted state (fresh session).
    pub fn clear(&self) -> io::Result<()> {
        for entry in fs::read_dir(&self.dir)? {
            let entry = entry?;
            if entry.file_type()?.is_file() {
                fs::remove_file(entry.path())?;
            }
        }
        Ok(())
    }
}

fn read_opt(path: &Path) -> io::Result<Option<String>> {
    match fs::read_to_string(path) {
        Ok(s) => Ok(Some(s)),
        Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(None),
        Err(e) => Err(e),
    }
}

fn to_io(e: serde_json::Error) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, e)
}

#[cfg(test)]
mod tests {
    use super::*;
    use waffle_analysis::{analyze, AnalyzerConfig};
    use waffle_sim::time::{ms, us};
    use waffle_sim::{SimConfig, Simulator, WorkloadBuilder};
    use waffle_trace::TraceRecorder;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "waffle-session-{tag}-{}",
            std::process::id()
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn sample() -> (waffle_sim::Workload, Trace, Plan) {
        let mut b = WorkloadBuilder::new("st.sample");
        let o = b.object("o");
        let started = b.event("s");
        let worker = b.script("worker", move |s| {
            s.wait(started).pad(ms(2)).use_(o, "W.use:1", us(20));
        });
        let main = b.script("main", move |s| {
            s.init(o, "M.init:1", us(20))
                .fork(worker)
                .signal(started)
                .pad(ms(10))
                .dispose(o, "M.dispose:9", us(20))
                .join_children();
        });
        b.main(main);
        let w = b.build();
        let mut rec = TraceRecorder::new(&w);
        let _ = Simulator::run(&w, SimConfig::with_seed(1), &mut rec);
        let trace = rec.into_trace();
        let plan = analyze(&trace, &AnalyzerConfig::default());
        (w, trace, plan)
    }

    #[test]
    fn session_round_trips_all_artifacts() {
        let dir = tmpdir("roundtrip");
        let session = Session::open(&dir).unwrap();
        let (_w, trace, plan) = sample();
        session.save_trace(&trace).unwrap();
        session.save_plan(&plan).unwrap();
        let mut decay = DecayState::default();
        decay.record_injection(waffle_mem::SiteId(0));
        session.save_decay(&decay).unwrap();

        let t2 = session.load_trace().unwrap().expect("trace saved");
        assert_eq!(t2.events, trace.events);
        let p2 = session.load_plan().unwrap().expect("plan saved");
        assert_eq!(p2.candidates, plan.candidates);
        let d2 = session.load_decay().unwrap();
        assert_eq!(d2.permille(waffle_mem::SiteId(0)), 850);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_artifacts_load_as_none_or_default() {
        let dir = tmpdir("fresh");
        let session = Session::open(&dir).unwrap();
        assert!(session.load_trace().unwrap().is_none());
        assert!(session.load_plan().unwrap().is_none());
        assert_eq!(
            session.load_decay().unwrap().permille(waffle_mem::SiteId(7)),
            1000
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn reports_are_numbered_and_clear_removes_them() {
        let dir = tmpdir("reports");
        let session = Session::open(&dir).unwrap();
        let report = BugReport {
            workload: "w".into(),
            kind: waffle_mem::NullRefKind::UseAfterFree,
            site: "X".into(),
            obj: waffle_mem::ObjectId(0),
            time: us(1),
            exposed_in_run: 2,
            total_runs: 2,
            delays_in_run: 1,
            delayed_sites: vec!["X".into()],
            thread_contexts: vec![],
            memory_model: waffle_sim::MemoryModel::Sc,
        };
        let p1 = session.save_report(&report, "report one").unwrap();
        let p2 = session.save_report(&report, "report two").unwrap();
        assert!(p1.ends_with("bug-001.txt"));
        assert!(p2.ends_with("bug-002.txt"));
        session.clear().unwrap();
        assert!(session.load_plan().unwrap().is_none());
        assert_eq!(fs::read_dir(&dir).unwrap().count(), 0);
        let _ = fs::remove_dir_all(&dir);
    }

    /// Satellite regression: a truncated `plan.json` (what a crash
    /// mid-`fs::write` used to leave behind) must load as a *corrupt*
    /// error, distinct from the absent case, and re-preparation (saving a
    /// fresh plan) must recover the session.
    #[test]
    fn truncated_plan_is_a_corrupt_error_and_recoverable() {
        let dir = tmpdir("truncated");
        let session = Session::open(&dir).unwrap();
        let (_w, trace, plan) = sample();
        session.save_plan(&plan).unwrap();
        let full = fs::read_to_string(dir.join("plan.json")).unwrap();
        fs::write(dir.join("plan.json"), &full[..full.len() / 2]).unwrap();
        let err = session.load_plan().unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(
            err.to_string().contains("plan.json")
                && err.to_string().contains("corrupt"),
            "error names the artifact and the corruption: {err}"
        );
        // Absent is still Ok(None), not an error.
        assert!(session.load_trace().unwrap().is_none());
        // Re-preparation replaces the corrupt artifact.
        session.save_trace(&trace).unwrap();
        session.save_plan(&plan).unwrap();
        assert_eq!(
            session.load_plan().unwrap().expect("recovered").candidates,
            plan.candidates
        );
        let _ = fs::remove_dir_all(&dir);
    }

    /// Atomic saves leave no temp droppings behind, and a corrupt decay
    /// file is an error rather than a silent reset to 100%.
    #[test]
    fn atomic_saves_leave_no_temp_files_and_corrupt_decay_errors() {
        let dir = tmpdir("atomic");
        let session = Session::open(&dir).unwrap();
        let (_w, trace, plan) = sample();
        session.save_trace(&trace).unwrap();
        session.save_plan(&plan).unwrap();
        session.save_decay(&DecayState::default()).unwrap();
        let names: Vec<String> = fs::read_dir(&dir)
            .unwrap()
            .filter_map(Result::ok)
            .map(|e| e.file_name().to_string_lossy().into_owned())
            .collect();
        assert!(
            names.iter().all(|n| !n.contains(".tmp.")),
            "no temp files survive a save: {names:?}"
        );
        fs::write(dir.join("decay.json"), "{\"not\": \"a decay state\"").unwrap();
        let err = session.load_decay().unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("decay.json"));
        let _ = fs::remove_dir_all(&dir);
    }

    /// Satellite regression for cross-process numbering: another process
    /// may have claimed report numbers this process never counted. The
    /// `create_new` retry loop must skip over any existing number instead
    /// of overwriting it.
    #[test]
    fn save_report_skips_numbers_claimed_by_other_processes() {
        let dir = tmpdir("crossproc");
        let session = Session::open(&dir).unwrap();
        // Simulate another process that claimed bug-002 (count says 1, so
        // a count-based scheme would pick bug-002 and clobber it).
        fs::write(dir.join("bug-002.txt"), "claimed by another process").unwrap();
        let report = BugReport {
            workload: "w".into(),
            kind: waffle_mem::NullRefKind::UseAfterFree,
            site: "X".into(),
            obj: waffle_mem::ObjectId(0),
            time: us(1),
            exposed_in_run: 2,
            total_runs: 2,
            delays_in_run: 1,
            delayed_sites: vec!["X".into()],
            thread_contexts: vec![],
            memory_model: waffle_sim::MemoryModel::Sc,
        };
        let p = session.save_report(&report, "ours").unwrap();
        assert!(p.ends_with("bug-003.txt"), "skipped the claimed number: {p:?}");
        assert_eq!(
            fs::read_to_string(dir.join("bug-002.txt")).unwrap(),
            "claimed by another process",
            "the other process's report survives"
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn concurrent_report_saves_never_collide() {
        let dir = tmpdir("concurrent");
        let session = Session::open(&dir).unwrap();
        let report = BugReport {
            workload: "w".into(),
            kind: waffle_mem::NullRefKind::UseAfterFree,
            site: "X".into(),
            obj: waffle_mem::ObjectId(0),
            time: us(1),
            exposed_in_run: 2,
            total_runs: 2,
            delays_in_run: 1,
            delayed_sites: vec!["X".into()],
            thread_contexts: vec![],
            memory_model: waffle_sim::MemoryModel::Sc,
        };
        let mut paths: Vec<PathBuf> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..8)
                .map(|_| s.spawn(|| session.save_report(&report, "r").unwrap()))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        paths.sort();
        paths.dedup();
        assert_eq!(paths.len(), 8, "every save got its own report number");
        assert_eq!(fs::read_dir(&dir).unwrap().count(), 8);
        let _ = fs::remove_dir_all(&dir);
    }
}
