//! On-disk session state: what the real tool persists between processes.
//!
//! Waffle's runs are separate processes: the preparation run writes the
//! trace; the analyzer writes the plan (`S`, `I`, delay lengths); each
//! detection run loads the plan and the current injection probabilities
//! and writes the updated probabilities back (§5). A [`Session`] wraps a
//! directory with those artifacts plus rendered bug reports.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use parking_lot::Mutex;
use waffle_analysis::Plan;
use waffle_inject::DecayState;
use waffle_trace::Trace;

use crate::report::BugReport;

/// A session directory holding one workload's cross-run state.
#[derive(Debug, Clone)]
pub struct Session {
    dir: PathBuf,
}

impl Session {
    /// Opens (creating if needed) a session directory.
    pub fn open(dir: impl Into<PathBuf>) -> io::Result<Self> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        Ok(Self { dir })
    }

    /// The session's directory.
    pub fn path(&self) -> &Path {
        &self.dir
    }

    fn file(&self, name: &str) -> PathBuf {
        self.dir.join(name)
    }

    /// Persists the preparation-run trace.
    pub fn save_trace(&self, trace: &Trace) -> io::Result<()> {
        fs::write(self.file("trace.json"), trace.to_json().map_err(to_io)?)
    }

    /// Loads the preparation-run trace, if one was saved.
    pub fn load_trace(&self) -> io::Result<Option<Trace>> {
        read_opt(&self.file("trace.json"))?
            .map(|s| Trace::from_json(&s).map_err(to_io))
            .transpose()
    }

    /// Persists the analysis plan.
    pub fn save_plan(&self, plan: &Plan) -> io::Result<()> {
        fs::write(self.file("plan.json"), plan.to_json().map_err(to_io)?)
    }

    /// Loads the analysis plan, if one was saved.
    pub fn load_plan(&self) -> io::Result<Option<Plan>> {
        read_opt(&self.file("plan.json"))?
            .map(|s| Plan::from_json(&s).map_err(to_io))
            .transpose()
    }

    /// Persists the injection probabilities after a detection run (§5:
    /// "saved on disk and used to bootstrap the next detection run").
    pub fn save_decay(&self, decay: &DecayState) -> io::Result<()> {
        fs::write(self.file("decay.json"), decay.to_json().map_err(to_io)?)
    }

    /// Loads the injection probabilities, defaulting to a fresh state.
    pub fn load_decay(&self) -> io::Result<DecayState> {
        Ok(match read_opt(&self.file("decay.json"))? {
            Some(s) => DecayState::from_json(&s).map_err(to_io)?,
            None => DecayState::default(),
        })
    }

    /// Appends a rendered bug report (one file per bug, numbered).
    ///
    /// Safe to call from several engine workers at once: the
    /// count-then-create numbering below is a TOCTOU window, so it runs
    /// under a process-wide lock.
    pub fn save_report(&self, report: &BugReport, rendered: &str) -> io::Result<PathBuf> {
        static REPORT_NUMBERING: Mutex<()> = Mutex::new(());
        let _guard = REPORT_NUMBERING.lock();
        let n = fs::read_dir(&self.dir)?
            .filter_map(Result::ok)
            .filter(|e| e.file_name().to_string_lossy().starts_with("bug-"))
            .count();
        let path = self.file(&format!("bug-{:03}.txt", n + 1));
        let mut body = String::new();
        body.push_str(rendered);
        body.push_str("\n--- json ---\n");
        body.push_str(&serde_json::to_string_pretty(report).map_err(to_io)?);
        fs::write(&path, body)?;
        Ok(path)
    }

    /// Removes all persisted state (fresh session).
    pub fn clear(&self) -> io::Result<()> {
        for entry in fs::read_dir(&self.dir)? {
            let entry = entry?;
            if entry.file_type()?.is_file() {
                fs::remove_file(entry.path())?;
            }
        }
        Ok(())
    }
}

fn read_opt(path: &Path) -> io::Result<Option<String>> {
    match fs::read_to_string(path) {
        Ok(s) => Ok(Some(s)),
        Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(None),
        Err(e) => Err(e),
    }
}

fn to_io(e: serde_json::Error) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, e)
}

#[cfg(test)]
mod tests {
    use super::*;
    use waffle_analysis::{analyze, AnalyzerConfig};
    use waffle_sim::time::{ms, us};
    use waffle_sim::{SimConfig, Simulator, WorkloadBuilder};
    use waffle_trace::TraceRecorder;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "waffle-session-{tag}-{}",
            std::process::id()
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn sample() -> (waffle_sim::Workload, Trace, Plan) {
        let mut b = WorkloadBuilder::new("st.sample");
        let o = b.object("o");
        let started = b.event("s");
        let worker = b.script("worker", move |s| {
            s.wait(started).pad(ms(2)).use_(o, "W.use:1", us(20));
        });
        let main = b.script("main", move |s| {
            s.init(o, "M.init:1", us(20))
                .fork(worker)
                .signal(started)
                .pad(ms(10))
                .dispose(o, "M.dispose:9", us(20))
                .join_children();
        });
        b.main(main);
        let w = b.build();
        let mut rec = TraceRecorder::new(&w);
        let _ = Simulator::run(&w, SimConfig::with_seed(1), &mut rec);
        let trace = rec.into_trace();
        let plan = analyze(&trace, &AnalyzerConfig::default());
        (w, trace, plan)
    }

    #[test]
    fn session_round_trips_all_artifacts() {
        let dir = tmpdir("roundtrip");
        let session = Session::open(&dir).unwrap();
        let (_w, trace, plan) = sample();
        session.save_trace(&trace).unwrap();
        session.save_plan(&plan).unwrap();
        let mut decay = DecayState::default();
        decay.record_injection(waffle_mem::SiteId(0));
        session.save_decay(&decay).unwrap();

        let t2 = session.load_trace().unwrap().expect("trace saved");
        assert_eq!(t2.events, trace.events);
        let p2 = session.load_plan().unwrap().expect("plan saved");
        assert_eq!(p2.candidates, plan.candidates);
        let d2 = session.load_decay().unwrap();
        assert_eq!(d2.permille(waffle_mem::SiteId(0)), 850);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_artifacts_load_as_none_or_default() {
        let dir = tmpdir("fresh");
        let session = Session::open(&dir).unwrap();
        assert!(session.load_trace().unwrap().is_none());
        assert!(session.load_plan().unwrap().is_none());
        assert_eq!(
            session.load_decay().unwrap().permille(waffle_mem::SiteId(7)),
            1000
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn reports_are_numbered_and_clear_removes_them() {
        let dir = tmpdir("reports");
        let session = Session::open(&dir).unwrap();
        let report = BugReport {
            workload: "w".into(),
            kind: waffle_mem::NullRefKind::UseAfterFree,
            site: "X".into(),
            obj: waffle_mem::ObjectId(0),
            time: us(1),
            exposed_in_run: 2,
            total_runs: 2,
            delays_in_run: 1,
            delayed_sites: vec!["X".into()],
            thread_contexts: vec![],
        };
        let p1 = session.save_report(&report, "report one").unwrap();
        let p2 = session.save_report(&report, "report two").unwrap();
        assert!(p1.ends_with("bug-001.txt"));
        assert!(p2.ends_with("bug-002.txt"));
        session.clear().unwrap();
        assert!(session.load_plan().unwrap().is_none());
        assert_eq!(fs::read_dir(&dir).unwrap().count(), 0);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn concurrent_report_saves_never_collide() {
        let dir = tmpdir("concurrent");
        let session = Session::open(&dir).unwrap();
        let report = BugReport {
            workload: "w".into(),
            kind: waffle_mem::NullRefKind::UseAfterFree,
            site: "X".into(),
            obj: waffle_mem::ObjectId(0),
            time: us(1),
            exposed_in_run: 2,
            total_runs: 2,
            delays_in_run: 1,
            delayed_sites: vec!["X".into()],
            thread_contexts: vec![],
        };
        let mut paths: Vec<PathBuf> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..8)
                .map(|_| s.spawn(|| session.save_report(&report, "r").unwrap()))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        paths.sort();
        paths.dedup();
        assert_eq!(paths.len(), 8, "every save got its own report number");
        assert_eq!(fs::read_dir(&dir).unwrap().count(), 8);
        let _ = fs::remove_dir_all(&dir);
    }
}
