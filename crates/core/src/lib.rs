//! Waffle's orchestrator: the public, end-to-end API of the tool.
//!
//! The workflow (Fig. 3) is: run the instrumented program once without
//! delays (*preparation run*), analyze the trace into a [`Plan`]
//! (candidate set `S`, per-location delay lengths, interference set `I`),
//! then run *detection runs* that inject delays according to the plan —
//! persisting the probability-decay state between runs — until a bug
//! manifests as an unhandled NULL-reference exception or the run budget is
//! exhausted.
//!
//! [`Detector`] drives that loop for any of the tools in the comparison
//! matrix (Waffle, WaffleBasic, the Table 7 ablations, baselines), and
//! [`experiment`] adds the paper's 15-repetition methodology (§6.1).
//!
//! [`Plan`]: waffle_analysis::Plan
//!
//! # Examples
//!
//! ```
//! use waffle_core::{Detector, Tool};
//! use waffle_sim::{SimTime, WorkloadBuilder};
//!
//! // A racy use-after-free: the worker's use and main's dispose are only
//! // ordered by timing luck.
//! let mut b = WorkloadBuilder::new("demo.quickstart");
//! let conn = b.object("conn");
//! let started = b.event("started");
//! let worker = b.script("worker", move |s| {
//!     s.wait(started)
//!         .compute(SimTime::from_us(100))
//!         .use_(conn, "Worker.poll:11", SimTime::from_us(10));
//! });
//! let main = b.script("main", move |s| {
//!     s.init(conn, "Main.ctor:2", SimTime::from_us(10))
//!         .fork(worker)
//!         .signal(started)
//!         .compute(SimTime::from_us(500))
//!         .dispose(conn, "Main.cleanup:8", SimTime::from_us(10))
//!         .join_children();
//! });
//! b.main(main);
//! let workload = b.build();
//!
//! let outcome = Detector::new(Tool::waffle()).detect(&workload, 0);
//! let report = outcome.exposed.expect("Waffle exposes the race");
//! assert_eq!(report.total_runs, 2); // preparation + one detection run
//! ```

pub mod campaign;
pub mod detector;
pub mod engine;
pub mod experiment;
pub mod report;
pub mod serve;
pub mod storage;

pub use campaign::{
    retry_seed, Campaign, CampaignConfig, CampaignManifest, CampaignProgress, CampaignReport,
    CampaignStatus, CellCheckpoint, CellFailure, CellFault, CellSpec, CellStatus, CellStatusLine,
    CheckpointState, ClaimInfo, RunOptions, WorkOptions, WorkProgress, WorkerClaim,
};
pub use detector::{Detector, DetectorConfig, Tool};
pub use engine::{attempt_seed, ExperimentEngine, GridCell};
pub use experiment::{run_experiment, summarize, ExperimentSummary};
pub use report::{BugReport, DetectionOutcome, RunSummary, TsvReport};
pub use serve::{
    replay_trace, serve, session_report_json, session_report_json_with_shed, QueuePolicy,
    ServeOptions, ServeReport, ShedCounts,
};
pub use storage::Session;
