//! The detection loop for every tool in the comparison matrix.

use std::collections::BTreeSet;

use waffle_analysis::{analyze_indexed, AnalyzerConfig};
use waffle_inject::{
    BasicState, DecayState, NoPrepPolicy, NoPrepState, SingleDelayPolicy, TsvdPolicy, TsvdState,
    WaffleBasicPolicy, WaffleConfig, WafflePolicy,
};
use waffle_sim::{MemoryConfig, NullMonitor, RunResult, SimConfig, SimTime, Simulator, Workload};
use waffle_trace::{TraceIndex, TraceRecorder};

use crate::report::{BugReport, DetectionOutcome, RunSummary};
use crate::storage::Session;

/// Which tool drives the detection runs.
#[derive(Debug, Clone)]
pub enum Tool {
    /// Waffle (§4): preparation run + plan-guided detection runs.
    Waffle {
        /// Trace-analysis configuration (ablations toggle its fields).
        analyzer: AnalyzerConfig,
        /// Runtime configuration.
        policy: WaffleConfig,
    },
    /// WaffleBasic (§3): online identification, fixed delays, no
    /// coordination.
    WaffleBasic {
        /// The fixed delay length (100 ms in the paper).
        fixed_delay: SimTime,
    },
    /// The "no preparation run" ablation (Table 7 row 2).
    NoPrep,
    /// One sampled delay per run (RaceFuzzer/CTrigger-style baseline). The
    /// sample set comes from a preparation-run plan.
    SingleDelay {
        /// Delay length per injection.
        delay: SimTime,
    },
    /// TSVD (§2): online thread-safety-violation detection. The outcome's
    /// `tsv_exposed` field reports the violation instead of a MemOrder
    /// report.
    Tsvd,
}

impl Tool {
    /// Full Waffle with the paper's defaults.
    pub fn waffle() -> Self {
        Tool::Waffle {
            analyzer: AnalyzerConfig::default(),
            policy: WaffleConfig::default(),
        }
    }

    /// WaffleBasic with the paper's 100 ms fixed delay.
    pub fn waffle_basic() -> Self {
        Tool::WaffleBasic {
            fixed_delay: WaffleBasicPolicy::FIXED_DELAY,
        }
    }

    /// Table 7 row 1: Waffle without parent-child analysis.
    pub fn waffle_no_parent_child() -> Self {
        Tool::Waffle {
            analyzer: AnalyzerConfig::default().without_parent_child(),
            policy: WaffleConfig::default(),
        }
    }

    /// Table 7 row 2: Waffle without a preparation run.
    pub fn waffle_no_prep() -> Self {
        Tool::NoPrep
    }

    /// Table 7 row 3: Waffle without custom delay lengths (fixed 100 ms).
    pub fn waffle_fixed_delay() -> Self {
        Tool::Waffle {
            analyzer: AnalyzerConfig::default().without_variable_delay(),
            policy: WaffleConfig::default(),
        }
    }

    /// Table 7 row 4: Waffle without interference control.
    pub fn waffle_no_interference() -> Self {
        Tool::Waffle {
            analyzer: AnalyzerConfig::default().without_interference_control(),
            policy: WaffleConfig {
                interference_control: false,
            },
        }
    }

    /// Whether the tool spends its first run on delay-free preparation.
    pub fn has_prep_run(&self) -> bool {
        matches!(self, Tool::Waffle { .. } | Tool::SingleDelay { .. })
    }

    /// Resolves a tool from its CLI / campaign-manifest spelling. This is
    /// the inverse the campaign manifest relies on: cells persist the tool
    /// as a string, and a resuming process reconstructs the detector from
    /// it.
    pub fn by_name(name: &str) -> Option<Tool> {
        Some(match name {
            "waffle" => Tool::waffle(),
            "basic" | "waffle-basic" => Tool::waffle_basic(),
            "tsvd" => Tool::Tsvd,
            "noprep" | "no-prep" | "waffle-noprep" => Tool::waffle_no_prep(),
            "no-parent-child" => Tool::waffle_no_parent_child(),
            "fixed-delay" => Tool::waffle_fixed_delay(),
            "no-interference" => Tool::waffle_no_interference(),
            _ => return None,
        })
    }

    /// Short display name for reports.
    pub fn name(&self) -> &'static str {
        match self {
            Tool::Waffle { .. } => "waffle",
            Tool::WaffleBasic { .. } => "waffle-basic",
            Tool::NoPrep => "waffle-noprep",
            Tool::SingleDelay { .. } => "single-delay",
            Tool::Tsvd => "tsvd",
        }
    }
}

/// Detector configuration.
#[derive(Debug, Clone)]
pub struct DetectorConfig {
    /// Maximum detection runs before giving up (50 in §6.2).
    pub max_detection_runs: u32,
    /// Per-operation timing noise (percent), the run-to-run variation.
    pub timing_noise_pct: u32,
    /// A run is killed after `deadline_factor × base_time` (the Table 5/6
    /// "TimeOut" condition; 40× by default so that NpgSQL-density delay
    /// floods complete while MQTT.Net-density floods time out, as in the
    /// paper). Zero disables deadlines.
    pub deadline_factor: u64,
    /// Record per-decision telemetry events in each run's journal
    /// (counters are always on; the event log is opt-in because it
    /// allocates per decision).
    pub telemetry_events: bool,
    /// Fault injection for crash-safety tests: [`detect`](Detector::detect)
    /// panics when called with exactly this attempt seed. Stands in for a
    /// detection process crashing mid-run (the failure mode the paper's
    /// process-per-run model isolates, §5); `None` (the default) disables
    /// it.
    pub panic_on_seed: Option<u64>,
    /// Worker threads for the trace-analysis sweep after the preparation
    /// run (1 = sequential). The produced plan is bit-identical at every
    /// value — sharding only changes wall-clock time — so this is safe to
    /// raise for trace-heavy workloads.
    pub analysis_jobs: usize,
    /// Memory model every run (base, preparation, detection) simulates.
    /// The default is sequential consistency — byte-identical to the
    /// pre-weak-memory detector; `tso`/`pso` put a store buffer under each
    /// thread, which is where reordering bugs live.
    pub memory: MemoryConfig,
}

impl Default for DetectorConfig {
    fn default() -> Self {
        Self {
            max_detection_runs: 50,
            timing_noise_pct: 3,
            deadline_factor: 40,
            telemetry_events: false,
            panic_on_seed: None,
            analysis_jobs: 1,
            memory: MemoryConfig::sc(),
        }
    }
}

/// Runs a tool's full workflow on one workload.
#[derive(Debug, Clone)]
pub struct Detector {
    tool: Tool,
    config: DetectorConfig,
}

impl Detector {
    /// Creates a detector with default configuration.
    pub fn new(tool: Tool) -> Self {
        Self {
            tool,
            config: DetectorConfig::default(),
        }
    }

    /// Creates a detector with an explicit configuration.
    pub fn with_config(tool: Tool, config: DetectorConfig) -> Self {
        Self { tool, config }
    }

    /// The tool being driven.
    pub fn tool(&self) -> &Tool {
        &self.tool
    }

    fn sim_config(&self, seed: u64, base: SimTime) -> SimConfig {
        let deadline = if self.config.deadline_factor == 0 || base == SimTime::ZERO {
            None
        } else {
            Some(base * self.config.deadline_factor)
        };
        SimConfig {
            seed,
            timing_noise_pct: self.config.timing_noise_pct,
            deadline,
            memory: self.config.memory,
            ..SimConfig::default()
        }
    }

    /// Executes the full workflow: base measurement, optional preparation
    /// run, then detection runs until a bug manifests or the budget runs
    /// out. `attempt_seed` individualizes the attempt (the paper repeats
    /// each experiment 15 times).
    pub fn detect(&self, workload: &Workload, attempt_seed: u64) -> DetectionOutcome {
        if self.config.panic_on_seed == Some(attempt_seed) {
            panic!(
                "fault injection: detector panicked on attempt seed {attempt_seed} ({})",
                workload.name
            );
        }
        let seed_of = |run: u64| attempt_seed.wrapping_mul(10_000).wrapping_add(run);
        // Base: uninstrumented, no deadline.
        let base = Simulator::run(
            workload,
            SimConfig {
                seed: seed_of(0),
                timing_noise_pct: self.config.timing_noise_pct,
                deadline: None,
                memory: self.config.memory,
                ..SimConfig::default()
            },
            &mut NullMonitor,
        );
        let mut outcome = DetectionOutcome {
            workload: workload.name.clone(),
            base_time: base.end_time,
            ..DetectionOutcome::default()
        };
        match &self.tool {
            Tool::Waffle { analyzer, policy } => {
                let plan = self.prepare(workload, seed_of(1), &mut outcome, analyzer);
                if outcome.exposed.is_some() {
                    return outcome;
                }
                let mut decay = DecayState::default();
                for run in 0..self.config.max_detection_runs {
                    let mut p =
                        WafflePolicy::with_config(plan.clone(), decay, seed_of(2 + run as u64), *policy);
                    p.record_events(self.config.telemetry_events);
                    let r = Simulator::run(
                        workload,
                        self.sim_config(seed_of(2 + run as u64), base.end_time),
                        &mut p,
                    );
                    outcome.telemetry.push(p.take_journal());
                    decay = p.into_decay();
                    if self.absorb(workload, &r, &mut outcome, false) {
                        return outcome;
                    }
                }
            }
            Tool::WaffleBasic { fixed_delay } => {
                let mut state = BasicState::default();
                for run in 0..self.config.max_detection_runs {
                    // WaffleBasic adapts TSVD, a per-run tool: the candidate
                    // set `S` persists across runs, but injection
                    // probabilities restart at 100% each run. (Waffle is the
                    // design that saves probabilities to disk between runs,
                    // §5.)
                    state.decay = DecayState::default();
                    let mut p = WaffleBasicPolicy::with_params(
                        state,
                        seed_of(1 + run as u64),
                        *fixed_delay,
                        WaffleBasicPolicy::DELTA,
                    );
                    p.record_events(self.config.telemetry_events);
                    let r = Simulator::run(
                        workload,
                        self.sim_config(seed_of(1 + run as u64), base.end_time),
                        &mut p,
                    );
                    outcome.telemetry.push(p.take_journal());
                    state = p.into_state();
                    if self.absorb(workload, &r, &mut outcome, false) {
                        return outcome;
                    }
                }
            }
            Tool::NoPrep => {
                let mut state = NoPrepState::default();
                for run in 0..self.config.max_detection_runs {
                    let mut p = NoPrepPolicy::new(state, seed_of(1 + run as u64));
                    p.record_events(self.config.telemetry_events);
                    let r = Simulator::run(
                        workload,
                        self.sim_config(seed_of(1 + run as u64), base.end_time),
                        &mut p,
                    );
                    outcome.telemetry.push(p.take_journal());
                    state = p.into_state();
                    if self.absorb(workload, &r, &mut outcome, false) {
                        return outcome;
                    }
                }
            }
            Tool::Tsvd => {
                let mut state = TsvdState::default();
                for run in 0..self.config.max_detection_runs {
                    let mut p = TsvdPolicy::new(state, seed_of(1 + run as u64));
                    p.record_events(self.config.telemetry_events);
                    let r = Simulator::run(
                        workload,
                        self.sim_config(seed_of(1 + run as u64), base.end_time),
                        &mut p,
                    );
                    outcome.telemetry.push(p.take_journal());
                    state = p.into_state();
                    outcome.detection_runs.push(RunSummary::from_run(&r));
                    if let Some(v) = r.tsv_violations.first() {
                        outcome.tsv_exposed = Some(crate::report::TsvReport {
                            workload: workload.name.clone(),
                            first_site: workload.sites.name(v.first_site).to_owned(),
                            second_site: workload.sites.name(v.second_site).to_owned(),
                            obj: v.obj,
                            time: v.time,
                            exposed_in_run: outcome.total_runs(),
                        });
                        return outcome;
                    }
                }
            }
            Tool::SingleDelay { delay } => {
                let plan = self.prepare(workload, seed_of(1), &mut outcome, &AnalyzerConfig::default());
                if outcome.exposed.is_some() {
                    return outcome;
                }
                let targets: Vec<_> = plan.delay_sites().collect();
                for run in 0..self.config.max_detection_runs {
                    let mut p =
                        SingleDelayPolicy::new(targets.clone(), *delay, seed_of(1 + run as u64));
                    let r = Simulator::run(
                        workload,
                        self.sim_config(seed_of(1 + run as u64), base.end_time),
                        &mut p,
                    );
                    if self.absorb(workload, &r, &mut outcome, false) {
                        return outcome;
                    }
                }
            }
        }
        outcome
    }

    /// Performs *one step* of the Waffle workflow against a session
    /// directory, the way the real tool runs as separate processes (§5):
    ///
    /// - with no plan on disk yet, this is the preparation run — the trace
    ///   and the analyzed plan are saved;
    /// - otherwise it is one detection run — the persisted injection
    ///   probabilities are loaded, evolved, and saved back, and an exposed
    ///   bug is rendered into the session as a report file.
    ///
    /// Returns the step's outcome; `exposed` is set only when this step's
    /// detection run manifested a bug. Only meaningful for
    /// [`Tool::Waffle`]; other tools return an error.
    pub fn step_with_session(
        &self,
        workload: &Workload,
        seed: u64,
        session: &Session,
    ) -> std::io::Result<DetectionOutcome> {
        let Tool::Waffle { analyzer, policy } = &self.tool else {
            return Err(std::io::Error::new(
                std::io::ErrorKind::Unsupported,
                "session-driven detection is the Waffle workflow",
            ));
        };
        let base = Simulator::run(
            workload,
            SimConfig {
                seed,
                timing_noise_pct: self.config.timing_noise_pct,
                deadline: None,
                memory: self.config.memory,
                ..SimConfig::default()
            },
            &mut NullMonitor,
        );
        let mut outcome = DetectionOutcome {
            workload: workload.name.clone(),
            base_time: base.end_time,
            ..DetectionOutcome::default()
        };
        match session.load_plan()? {
            None => {
                let mut rec = TraceRecorder::new(workload);
                let r = Simulator::run(
                    workload,
                    self.sim_config(seed, outcome.base_time),
                    &mut rec,
                );
                outcome.prep = Some(RunSummary::from_run(&r));
                outcome.spontaneous = r.manifested();
                let trace = rec.into_trace();
                session.save_trace(&trace)?;
                let index = TraceIndex::build(&trace);
                let analyzer = analyzer.with_memory(self.config.memory.model);
                let plan = analyze_indexed(&index, &analyzer, self.config.analysis_jobs);
                session.save_plan(&plan)?;
            }
            Some(plan) => {
                let decay = session.load_decay()?;
                let mut p = WafflePolicy::with_config(plan, decay, seed, *policy);
                p.record_events(self.config.telemetry_events);
                let r = Simulator::run(
                    workload,
                    self.sim_config(seed, outcome.base_time),
                    &mut p,
                );
                outcome.telemetry.push(p.take_journal());
                session.save_decay(&p.into_decay())?;
                if self.absorb(workload, &r, &mut outcome, false) {
                    let report = outcome.exposed.as_ref().expect("absorb set it");
                    session.save_report(report, &report.render(&workload.sites))?;
                }
            }
        }
        Ok(outcome)
    }

    /// Runs the preparation run, recording it into the outcome; returns the
    /// analyzed plan.
    fn prepare(
        &self,
        workload: &Workload,
        seed: u64,
        outcome: &mut DetectionOutcome,
        analyzer: &AnalyzerConfig,
    ) -> waffle_analysis::Plan {
        let mut rec = TraceRecorder::new(workload);
        let r = Simulator::run(workload, self.sim_config(seed, outcome.base_time), &mut rec);
        outcome.prep = Some(RunSummary::from_run(&r));
        if r.manifested() {
            // A spontaneous manifestation in the delay-free run: recorded,
            // but not credited as a tool exposure.
            outcome.spontaneous = true;
        }
        let trace = rec.into_trace();
        let index = TraceIndex::build(&trace);
        // Stamp the plan with the model the preparation run simulated.
        let analyzer = analyzer.with_memory(self.config.memory.model);
        analyze_indexed(&index, &analyzer, self.config.analysis_jobs)
    }

    /// Records one detection run; returns `true` when a bug was exposed.
    fn absorb(
        &self,
        workload: &Workload,
        r: &RunResult,
        outcome: &mut DetectionOutcome,
        _prep: bool,
    ) -> bool {
        outcome.detection_runs.push(RunSummary::from_run(r));
        if !r.manifested() {
            return false;
        }
        if r.delays.is_empty() {
            outcome.spontaneous = true;
            return false;
        }
        let e = &r.exceptions[0];
        let delayed_sites: BTreeSet<String> = r
            .delays
            .iter()
            .map(|d| workload.sites.name(d.site).to_owned())
            .collect();
        outcome.exposed = Some(BugReport {
            workload: workload.name.clone(),
            kind: e.error.kind,
            site: workload.sites.name(e.error.site).to_owned(),
            obj: e.error.obj,
            time: e.time,
            exposed_in_run: outcome.total_runs(),
            total_runs: outcome.total_runs(),
            delays_in_run: r.delays.len() as u64,
            delayed_sites: delayed_sites.into_iter().collect(),
            thread_contexts: r.thread_contexts.clone(),
            memory_model: self.config.memory.model,
        });
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use waffle_sim::WorkloadBuilder;

    /// Racy use-after-free with a single dynamic instance per run, at a
    /// realistic time scale (the paper's subjects run for hundreds of
    /// milliseconds, so a 100 ms fixed delay fits under the timeout).
    fn racy_uaf() -> Workload {
        let mut b = WorkloadBuilder::new("det.uaf");
        let o = b.object("conn");
        let started = b.event("started");
        let worker = b.script("worker", move |s| {
            s.wait(started)
                .compute(SimTime::from_ms(10))
                .use_(o, "Worker.poll:11", SimTime::from_us(50));
        });
        let main = b.script("main", move |s| {
            s.init(o, "Main.ctor:2", SimTime::from_us(200))
                .fork(worker)
                .signal(started)
                .compute(SimTime::from_ms(60))
                .dispose(o, "Main.cleanup:8", SimTime::from_us(50))
                .join_children();
        });
        b.main(main);
        b.build()
    }

    #[test]
    fn waffle_needs_exactly_two_runs_for_a_simple_race() {
        let outcome = Detector::new(Tool::waffle()).detect(&racy_uaf(), 1);
        let report = outcome.exposed.clone().expect("must expose");
        assert_eq!(report.total_runs, 2, "prep + 1 detection");
        assert_eq!(report.kind, waffle_mem::NullRefKind::UseAfterFree);
        assert_eq!(report.site, "Worker.poll:11");
        assert!(!outcome.spontaneous);
        // Slowdown is bounded: two runs ≈ 2× the base plus overhead.
        assert!(outcome.slowdown() < 4.0, "slowdown {}", outcome.slowdown());
    }

    #[test]
    fn waffle_basic_needs_more_runs_for_single_instance_bugs() {
        // The delay site has one dynamic instance per run, so WaffleBasic
        // can only identify in run k and inject in run k+1.
        let outcome = Detector::new(Tool::waffle_basic()).detect(&racy_uaf(), 1);
        let report = outcome.exposed.expect("basic exposes it eventually");
        assert!(report.total_runs >= 2);
    }

    #[test]
    fn detection_gives_up_after_budget() {
        // A clean workload: no bug to find; the detector exhausts its runs.
        let mut b = WorkloadBuilder::new("det.clean");
        let o = b.object("o");
        let main = b.script("main", move |s| {
            s.init(o, "M.i:1", SimTime::from_us(10))
                .use_(o, "M.u:2", SimTime::from_us(10))
                .dispose(o, "M.d:3", SimTime::from_us(10));
        });
        b.main(main);
        let w = b.build();
        let cfg = DetectorConfig {
            max_detection_runs: 5,
            ..DetectorConfig::default()
        };
        let outcome = Detector::with_config(Tool::waffle(), cfg).detect(&w, 0);
        assert!(outcome.exposed.is_none());
        assert_eq!(outcome.detection_runs.len(), 5);
        assert!(outcome.prep.is_some());
    }

    #[test]
    fn tsvd_tool_reports_violations_not_memorder_bugs() {
        let mut b = WorkloadBuilder::new("det.tsv");
        let dict = b.object("dict");
        let started = b.event("s");
        let worker = b.script("worker", move |s| {
            s.wait(started)
                .pad(SimTime::from_ms(2))
                .unsafe_call(dict, "W.Add:3", SimTime::from_ms(1));
        });
        let main = b.script("main", move |s| {
            s.init(dict, "M.ctor:1", SimTime::from_us(20))
                .fork(worker)
                .signal(started)
                .pad(SimTime::from_ms(40))
                .unsafe_call(dict, "M.Get:7", SimTime::from_ms(1))
                .join_children();
        });
        b.main(main);
        let w = b.build();
        let outcome = Detector::new(Tool::Tsvd).detect(&w, 1);
        let v = outcome.tsv_exposed.expect("TSVD must force the overlap");
        assert!(outcome.exposed.is_none());
        assert!(v.exposed_in_run >= 1);
        assert_ne!(v.first_site, v.second_site);
    }

    #[test]
    fn session_steps_mirror_the_real_process_model() {
        let dir = std::env::temp_dir().join(format!("waffle-det-session-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let session = crate::storage::Session::open(&dir).unwrap();
        let w = racy_uaf();
        let det = Detector::new(Tool::waffle());
        // Step 1: preparation — saves trace + plan, exposes nothing.
        let s1 = det.step_with_session(&w, 1, &session).unwrap();
        assert!(s1.prep.is_some());
        assert!(s1.exposed.is_none());
        assert!(session.load_plan().unwrap().is_some());
        assert!(session.load_trace().unwrap().is_some());
        // Step 2: first detection run — exposes the bug and writes the
        // report into the session.
        let s2 = det.step_with_session(&w, 2, &session).unwrap();
        let report = s2.exposed.expect("detection step exposes");
        assert_eq!(report.site, "Worker.poll:11");
        assert!(dir.join("bug-001.txt").exists());
        // The decay evolved on disk.
        let decay = session.load_decay().unwrap();
        assert!(decay.touched_sites() >= 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn session_steps_reject_non_waffle_tools() {
        let dir = std::env::temp_dir().join(format!("waffle-det-sess2-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let session = crate::storage::Session::open(&dir).unwrap();
        let det = Detector::new(Tool::waffle_basic());
        assert!(det
            .step_with_session(&racy_uaf(), 1, &session)
            .is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn attempt_seeds_change_timing_but_not_verdict() {
        let w = racy_uaf();
        for seed in 0..5 {
            let outcome = Detector::new(Tool::waffle()).detect(&w, seed);
            assert!(outcome.exposed.is_some(), "seed {seed} failed");
        }
    }
}
