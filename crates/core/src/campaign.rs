//! Crash-safe, resumable experiment campaigns.
//!
//! The real tool runs every detection run as its own OS process precisely
//! so a crashing run cannot take down the campaign (§5) — the same
//! robustness choice TSVD made for production CI fleets. This module gives
//! the reproduction the equivalent property at the experiment-grid level:
//! a [`Campaign`] is a directory holding a [`CampaignManifest`] (the grid
//! of `(workload, tool, attempts)` cells plus a config fingerprint) and
//! one [`CellCheckpoint`] file per finished cell, all written atomically
//! (temp-file + rename, via the same discipline as
//! [`Session`](crate::storage::Session)). Killing the campaign process at
//! any instant therefore leaves only whole artifacts; rerunning with
//! `resume` skips checkpointed cells and produces a [`CampaignReport`]
//! bit-identical to an uninterrupted run at any worker count.
//!
//! Fault isolation happens at the cell boundary: a panicking attempt is
//! caught ([`std::panic::catch_unwind`]), retried a bounded number of
//! times on fresh seeds ([`retry_seed`]), and — if every retry panics —
//! the cell is quarantined as [`CellStatus::Failed`] in the final report
//! while every other cell's results stand. A cell whose runs exceeded the
//! virtual-time budget is classified [`CellStatus::TimedOut`] (its summary
//! is still recorded; the status makes the budget violation visible at the
//! campaign level).
//!
//! # Coordinator-free multi-process campaigns
//!
//! [`Campaign::work`] scales the same directory across *processes* (and,
//! via a shared filesystem, across machines) with no coordinator: each
//! worker claims outstanding cells through `O_EXCL` claim files
//! (`claim-NNNN.json`, created with
//! [`create_new`](fs::OpenOptions::create_new), the same
//! exclusive-create discipline [`Session::save_report`] uses), runs the
//! cell, checkpoints it, and releases the claim. Because cells are pure in
//! `(spec, workload, config)` and checkpoints are written atomically, the
//! protocol tolerates every failure mode by construction: a worker killed
//! mid-cell leaves a claim whose **lease** (file mtime older than
//! `lease_secs`) lets any other worker atomically take the claim over
//! (rename-then-delete — rename is the atomic arbiter, so exactly one
//! thief wins) and re-run the cell to the byte-identical checkpoint. Even
//! the pathological double-run — thief and a slow-but-alive owner both
//! finishing the same cell — is harmless: both write the same bytes. The
//! final `report.json` is therefore byte-identical to a single-process
//! [`Campaign::run`] no matter how many workers raced, which
//! `tests/campaign.rs` and the CI kill/resume smoke pin down.
//!
//! [`Session::save_report`]: crate::storage::Session::save_report

use std::fs;
use std::io;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use waffle_sim::Workload;
use waffle_telemetry::TelemetrySummary;

use crate::detector::{Detector, DetectorConfig, Tool};
use crate::engine::{attempt_seed, panic_message};
use crate::experiment::{summarize, ExperimentSummary};
use crate::report::DetectionOutcome;
use crate::storage::{corrupt, write_atomic};

/// Manifest schema version; bumped on incompatible layout changes.
pub const MANIFEST_VERSION: u32 = 1;

const MANIFEST_FILE: &str = "manifest.json";
const REPORT_FILE: &str = "report.json";

/// The seed for `attempt` on its `retry`-th retry. Retry 0 is the
/// standard [`attempt_seed`] ladder, so an unfailing campaign cell is
/// bit-identical to [`ExperimentEngine::run_grid`]; each retry shifts the
/// whole ladder into a disjoint seed range, so a retried cell re-rolls
/// every run while staying fully deterministic (and therefore identical
/// across interrupt/resume).
///
/// [`ExperimentEngine::run_grid`]: crate::engine::ExperimentEngine::run_grid
pub fn retry_seed(attempt: u32, retry: u32) -> u64 {
    attempt_seed(attempt) + (u64::from(retry) << 32)
}

/// Deliberate fault injection for crash-safety tests: the cell's detector
/// panics at the given attempt on the first `panics` tries of the cell
/// (`u32::MAX` ⇒ every retry panics and the cell is quarantined). Stands
/// in for a detection process crashing deterministically.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CellFault {
    /// The attempt index (0-based) whose seed triggers the panic.
    pub attempt: u32,
    /// How many tries of the cell (initial run + retries) panic.
    pub panics: u32,
}

/// One `(workload, tool, attempts)` cell of a campaign grid, persisted by
/// name so a fresh process can reconstruct the work from the manifest.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CellSpec {
    /// Workload (test input) name, resolved at run time.
    pub workload: String,
    /// Tool spelling, resolved via [`Tool::by_name`].
    pub tool: String,
    /// Repetition attempts (§6.1; the paper uses 15).
    pub attempts: u32,
    /// Optional fault injection (crash-safety tests only; `None` in
    /// normal campaigns).
    pub fault: Option<CellFault>,
}

impl CellSpec {
    /// A plain cell with no fault injection.
    pub fn new(workload: impl Into<String>, tool: impl Into<String>, attempts: u32) -> Self {
        Self {
            workload: workload.into(),
            tool: tool.into(),
            attempts,
            fault: None,
        }
    }
}

/// Detector configuration shared by every cell, fingerprinted into the
/// manifest so a resumed campaign cannot silently mix results computed
/// under different configurations.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CampaignConfig {
    /// Per-cell detection-run budget (50 in §6.2).
    pub max_detection_runs: u32,
    /// Per-operation timing noise (percent).
    pub timing_noise_pct: u32,
    /// Virtual-time budget factor (a run dies at `factor × base_time`).
    pub deadline_factor: u64,
    /// Bounded retry policy for panicking cells: a cell is retried on
    /// fresh seeds at most this many times before being quarantined.
    pub max_retries: u32,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        let d = DetectorConfig::default();
        Self {
            max_detection_runs: d.max_detection_runs,
            timing_noise_pct: d.timing_noise_pct,
            deadline_factor: d.deadline_factor,
            max_retries: 2,
        }
    }
}

/// The campaign's durable description: what to run and under which
/// configuration. Written once, atomically, as `manifest.json`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CampaignManifest {
    /// Schema version ([`MANIFEST_VERSION`]).
    pub version: u32,
    /// FNV-1a fingerprint over the config and the cell grid; checkpoints
    /// carry it too, so stale checkpoints from an edited manifest are
    /// detected and re-run instead of silently merged.
    pub fingerprint: u64,
    /// Shared detector configuration.
    pub config: CampaignConfig,
    /// The grid, in canonical cell order.
    pub cells: Vec<CellSpec>,
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in bytes {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn fingerprint(config: &CampaignConfig, cells: &[CellSpec]) -> u64 {
    use std::fmt::Write as _;
    let mut s = format!(
        "v{MANIFEST_VERSION}|{}|{}|{}|{}",
        config.max_detection_runs, config.timing_noise_pct, config.deadline_factor,
        config.max_retries
    );
    for c in cells {
        let fault = match &c.fault {
            Some(f) => format!("f{}x{}", f.attempt, f.panics),
            None => "-".to_owned(),
        };
        let _ = write!(s, "|{}~{}~{}~{fault}", c.workload, c.tool, c.attempts);
    }
    fnv1a(s.as_bytes())
}

/// How a cell ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CellStatus {
    /// All attempts ran within every budget.
    Completed,
    /// All attempts ran, but at least one detection run exceeded the
    /// virtual-time budget (the Table 5/6 "TimeOut" condition), surfaced
    /// at campaign level.
    TimedOut,
    /// Every try (initial + retries) panicked; the cell is quarantined
    /// and its `summary` is absent.
    Failed,
}

/// One recorded panic of a cell try.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CellFailure {
    /// Which try panicked (0 = initial run).
    pub retry: u32,
    /// The attempt index that panicked.
    pub attempt: u32,
    /// The seed that attempt ran under.
    pub seed: u64,
    /// The panic message.
    pub message: String,
}

/// The durable record of one finished cell, written atomically as
/// `cell-NNNN.json` the moment the cell completes — the unit of resume.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CellCheckpoint {
    /// Cell index in the manifest grid.
    pub cell: usize,
    /// Copy of the manifest fingerprint this result was computed under.
    pub fingerprint: u64,
    /// The cell's spec (denormalized for self-describing checkpoints).
    pub spec: CellSpec,
    /// Terminal classification.
    pub status: CellStatus,
    /// The experiment summary — including folded telemetry counters —
    /// for `Completed`/`TimedOut`; `None` for quarantined cells.
    pub summary: Option<ExperimentSummary>,
    /// Every panic observed across the tries, in try order.
    pub failures: Vec<CellFailure>,
    /// Retries consumed before the terminal status (0 = clean first try).
    pub retries_used: u32,
}

/// The durable state of one cell slot on disk.
#[derive(Debug, Clone, PartialEq)]
pub enum CheckpointState {
    /// No checkpoint file: the cell is outstanding.
    Absent,
    /// A file exists but is unusable (corrupt, or fingerprinted by a
    /// different manifest): treated as outstanding and overwritten.
    Invalid,
    /// A valid checkpoint for the current manifest (boxed: a checkpoint
    /// carries a full summary and dwarfs the other variants).
    Ready(Box<CellCheckpoint>),
}

/// Options for one `run` invocation.
#[derive(Debug, Clone)]
pub struct RunOptions {
    /// Worker threads for the cell fan-out (results are identical at any
    /// count; clamped to at least 1).
    pub jobs: usize,
    /// Keep existing checkpoints and run only outstanding cells. When
    /// `false`, all checkpoints (and any stale report) are cleared first.
    pub resume: bool,
    /// Stop after checkpointing this many cells (used by tests and the CI
    /// smoke job to simulate a kill between cells; `None` = run to the
    /// end).
    pub max_cells: Option<usize>,
}

impl Default for RunOptions {
    fn default() -> Self {
        Self {
            jobs: 1,
            resume: false,
            max_cells: None,
        }
    }
}

/// Options for one `work` invocation (a single worker process's loop).
#[derive(Debug, Clone)]
pub struct WorkOptions {
    /// Worker name recorded in claim files (surfaced by `campaign
    /// status`); defaults to `host-pid` style naming in the CLI.
    pub worker: String,
    /// Claim lease in seconds: a claim file whose mtime is at least this
    /// old is considered abandoned and taken over. `0` treats every
    /// existing claim as stale immediately (recovery drills and tests).
    pub lease_secs: u64,
    /// Stop after checkpointing this many cells (`None` = work until no
    /// cell is left for this worker).
    pub max_cells: Option<usize>,
    /// How long to sleep between scans while other workers hold claims.
    pub poll_ms: u64,
    /// When `true`, a worker that finds live claims but no claimable cell
    /// keeps polling until the campaign completes (so it can assemble the
    /// final report); when `false`, it returns with cells outstanding.
    pub wait: bool,
}

impl Default for WorkOptions {
    fn default() -> Self {
        Self {
            worker: format!("worker-{}", std::process::id()),
            lease_secs: 60,
            max_cells: None,
            poll_ms: 50,
            wait: true,
        }
    }
}

/// Keeps a live worker's claim fresh while a long cell runs.
///
/// The lease protocol reads a claim's *mtime* as liveness, but a cell can
/// legitimately run longer than the lease — without a heartbeat, a slow
/// cell's claim is stolen at exactly `lease_secs` and the cell runs
/// twice. The heartbeat thread touches the claim file every ~lease/3.
/// It opens the file **without** `create`: once a thief renames the claim
/// away, the touch quietly fails and the refresh stops — the correct
/// failure mode, since re-creating the file would fight the thief's
/// exclusive-create.
///
/// Dropping the guard stops the thread promptly (condvar wake, not a
/// sleep race), so short cells don't pay the heartbeat period on exit.
pub(crate) struct ClaimHeartbeat {
    state: std::sync::Arc<(std::sync::Mutex<bool>, std::sync::Condvar)>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl ClaimHeartbeat {
    /// Spawns a heartbeat touching `path` every `period`.
    pub(crate) fn spawn(path: PathBuf, period: std::time::Duration) -> Self {
        let state = std::sync::Arc::new((std::sync::Mutex::new(false), std::sync::Condvar::new()));
        let shared = std::sync::Arc::clone(&state);
        let handle = std::thread::spawn(move || {
            let (stopped, wake) = &*shared;
            let mut guard = stopped.lock().expect("heartbeat lock poisoned");
            // The stop flag is re-checked *before* every wait: the guard
            // may be dropped before this thread even takes the lock, and
            // a notify with no waiter is lost — waiting first would then
            // block the join for a whole period.
            while !*guard {
                let (g, timeout) = wake
                    .wait_timeout(guard, period)
                    .expect("heartbeat lock poisoned");
                guard = g;
                if !*guard && timeout.timed_out() {
                    if let Ok(f) = fs::OpenOptions::new().write(true).open(&path) {
                        let _ = f.set_modified(std::time::SystemTime::now());
                    }
                }
            }
        });
        Self {
            state,
            handle: Some(handle),
        }
    }
}

impl Drop for ClaimHeartbeat {
    fn drop(&mut self) {
        *self.state.0.lock().expect("heartbeat lock poisoned") = true;
        self.state.1.notify_all();
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

/// The contents of a `claim-NNNN.json` file: which worker is (or was)
/// running the cell. Purely informational — claim *existence* and mtime
/// drive the protocol, so a torn claim write can never corrupt it.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct WorkerClaim {
    /// The claimed cell index.
    pub cell: usize,
    /// Manifest fingerprint the claimant was working under.
    pub fingerprint: u64,
    /// Claimant's worker name.
    pub worker: String,
    /// Claimant's OS process id.
    pub pid: u32,
}

/// What one `work` invocation did.
#[derive(Debug, Clone)]
pub struct WorkProgress {
    /// Cells this worker executed (and checkpointed), in execution order,
    /// with their terminal status.
    pub ran: Vec<(usize, CellStatus)>,
    /// Stale claims this worker recovered (taken over via the lease).
    pub recovered: usize,
    /// Cells still outstanding when this worker returned (0 unless
    /// `wait = false` or `max_cells` cut the loop short).
    pub outstanding: usize,
    /// The final report, present when this worker observed the campaign
    /// complete (also written to `report.json` — idempotently, since every
    /// worker computes identical bytes).
    pub report: Option<CampaignReport>,
}

/// One live claim, as reported by [`Campaign::status`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ClaimInfo {
    /// The claimed cell.
    pub cell: usize,
    /// Claimant's worker name (`"?"` if the claim file was unreadable —
    /// e.g. scanned mid-write).
    pub worker: String,
    /// Claimant's pid (0 if unreadable).
    pub pid: u32,
    /// Claim age in seconds (mtime-based, the same clock the lease uses).
    pub age_secs: u64,
}

/// One cell's line in [`Campaign::status`]: durable state plus any live
/// claim.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CellStatusLine {
    /// Cell index in the manifest grid.
    pub cell: usize,
    /// The cell's workload name.
    pub workload: String,
    /// The cell's tool spelling.
    pub tool: String,
    /// `"completed"`, `"timed_out"`, `"failed"`, `"claimed"`, or
    /// `"outstanding"`.
    pub state: String,
    /// Retries the checkpoint consumed, for checkpointed cells.
    pub retries_used: Option<u32>,
    /// Last recorded panic message, for failed (quarantined) cells.
    pub last_failure: Option<String>,
    /// The live claim, for claimed cells.
    pub claim: Option<ClaimInfo>,
}

/// A point-in-time view of campaign progress across all workers: per-cell
/// states (quarantined cells and their panics included), live claims, and
/// the roll-up counts `campaign status --json` emits.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CampaignStatus {
    /// Cells in the grid.
    pub total: usize,
    /// Cells with a valid checkpoint (any terminal status).
    pub done: usize,
    /// Checkpointed cells that completed cleanly.
    pub completed: usize,
    /// Checkpointed cells that hit the virtual-time budget.
    pub timed_out: usize,
    /// Quarantined (failed) cell indices, in order.
    pub quarantined: Vec<usize>,
    /// Cells without a valid checkpoint.
    pub outstanding: usize,
    /// Live worker claims, in cell order.
    pub claims: Vec<ClaimInfo>,
    /// Whether `report.json` has been written.
    pub report_written: bool,
    /// Per-cell detail, in cell order.
    pub cells: Vec<CellStatusLine>,
}

/// What one `run` invocation did.
#[derive(Debug, Clone)]
pub struct CampaignProgress {
    /// Cells executed (and checkpointed) by this invocation, in cell
    /// order, with their terminal status.
    pub ran: Vec<(usize, CellStatus)>,
    /// Cells skipped because a valid checkpoint already existed.
    pub skipped: usize,
    /// Cells still outstanding after this invocation.
    pub outstanding: usize,
    /// The final report, present once every cell is checkpointed (also
    /// written to `report.json`).
    pub report: Option<CampaignReport>,
}

/// The campaign's final, deterministic report: a pure fold of the
/// checkpoints in cell order, so an interrupted-and-resumed campaign
/// renders byte-for-byte the report of an uninterrupted one.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CampaignReport {
    /// Every cell's checkpoint, in manifest order.
    pub cells: Vec<CellCheckpoint>,
    /// Cells that completed cleanly.
    pub completed: u32,
    /// Cells that completed but hit the virtual-time budget.
    pub timed_out: u32,
    /// Quarantined (failed) cell indices, in order.
    pub quarantined: Vec<usize>,
    /// Telemetry folded across all non-quarantined cells in cell order.
    pub telemetry: TelemetrySummary,
}

impl CampaignReport {
    /// Renders the report as a human-readable block, quarantine section
    /// included.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "campaign: {} cells — {} completed, {} timed out, {} quarantined",
            self.cells.len(),
            self.completed,
            self.timed_out,
            self.quarantined.len()
        );
        for c in &self.cells {
            if let Some(s) = &c.summary {
                let runs = s
                    .reported_runs()
                    .map(|r| format!(", typical exposure in {r} runs"))
                    .unwrap_or_default();
                let status = match c.status {
                    CellStatus::TimedOut => " [TimeOut]",
                    _ => "",
                };
                let retried = if c.retries_used > 0 {
                    format!(" [recovered after {} retr{}]", c.retries_used,
                        if c.retries_used == 1 { "y" } else { "ies" })
                } else {
                    String::new()
                };
                let _ = writeln!(
                    out,
                    "  [{:04}] {} / {}: {}/{} attempts exposed{runs}{status}{retried}",
                    c.cell, c.spec.workload, c.spec.tool, s.exposed_attempts, s.attempts
                );
            }
        }
        if !self.quarantined.is_empty() {
            let _ = writeln!(out, "quarantine:");
            for &i in &self.quarantined {
                let c = &self.cells[i];
                let last = c
                    .failures
                    .last()
                    .map(|f| f.message.as_str())
                    .unwrap_or("unknown panic");
                let _ = writeln!(
                    out,
                    "  [{:04}] {} / {}: {} panic(s), last: {last}",
                    c.cell,
                    c.spec.workload,
                    c.spec.tool,
                    c.failures.len()
                );
            }
        }
        let t = &self.telemetry.counters;
        let _ = writeln!(
            out,
            "telemetry: {} runs, {} injected, {} skipped (probability), {} skipped (interference), {} decay steps, {} instrumented ops",
            self.telemetry.runs,
            t.injected,
            t.skipped_probability,
            t.skipped_interference,
            t.decay_steps,
            t.instrumented_ops
        );
        out
    }
}

/// A campaign directory: manifest + per-cell checkpoints + final report.
#[derive(Debug, Clone)]
pub struct Campaign {
    dir: PathBuf,
    manifest: CampaignManifest,
}

impl Campaign {
    /// Creates a campaign directory with a freshly fingerprinted manifest.
    /// Fails if a manifest already exists (campaigns are immutable once
    /// created; make a new directory instead), if the grid is empty, or if
    /// a cell names an unknown tool.
    pub fn create(
        dir: impl Into<PathBuf>,
        config: CampaignConfig,
        cells: Vec<CellSpec>,
    ) -> io::Result<Self> {
        let dir = dir.into();
        if cells.is_empty() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "a campaign needs at least one cell",
            ));
        }
        for c in &cells {
            if Tool::by_name(&c.tool).is_none() {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidInput,
                    format!("cell {}: unknown tool {}", c.workload, c.tool),
                ));
            }
            if c.attempts == 0 {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidInput,
                    format!("cell {}: attempts must be at least 1", c.workload),
                ));
            }
        }
        fs::create_dir_all(&dir)?;
        let path = dir.join(MANIFEST_FILE);
        if path.exists() {
            return Err(io::Error::new(
                io::ErrorKind::AlreadyExists,
                format!("{}: campaign already initialized", path.display()),
            ));
        }
        let manifest = CampaignManifest {
            version: MANIFEST_VERSION,
            fingerprint: fingerprint(&config, &cells),
            config,
            cells,
        };
        write_atomic(
            &path,
            &serde_json::to_string_pretty(&manifest).map_err(|e| corrupt(MANIFEST_FILE, e))?,
        )?;
        Ok(Self { dir, manifest })
    }

    /// Opens an existing campaign directory, verifying the manifest's
    /// schema version, self-fingerprint, and tool names.
    pub fn open(dir: impl Into<PathBuf>) -> io::Result<Self> {
        let dir = dir.into();
        let path = dir.join(MANIFEST_FILE);
        let text = fs::read_to_string(&path).map_err(|e| {
            if e.kind() == io::ErrorKind::NotFound {
                io::Error::new(
                    io::ErrorKind::NotFound,
                    format!("{}: not a campaign directory (no manifest)", dir.display()),
                )
            } else {
                e
            }
        })?;
        let manifest: CampaignManifest =
            serde_json::from_str(&text).map_err(|e| corrupt(MANIFEST_FILE, e))?;
        if manifest.version != MANIFEST_VERSION {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!(
                    "{MANIFEST_FILE}: version {} (this build speaks {MANIFEST_VERSION})",
                    manifest.version
                ),
            ));
        }
        if manifest.fingerprint != fingerprint(&manifest.config, &manifest.cells) {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("{MANIFEST_FILE}: fingerprint mismatch (manifest was edited?)"),
            ));
        }
        for c in &manifest.cells {
            if Tool::by_name(&c.tool).is_none() {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("{MANIFEST_FILE}: cell {} names unknown tool {}", c.workload, c.tool),
                ));
            }
        }
        Ok(Self { dir, manifest })
    }

    /// The campaign directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The manifest this campaign was created with.
    pub fn manifest(&self) -> &CampaignManifest {
        &self.manifest
    }

    fn checkpoint_path(&self, cell: usize) -> PathBuf {
        self.dir.join(format!("cell-{cell:04}.json"))
    }

    /// The durable state of one cell slot.
    pub fn checkpoint_state(&self, cell: usize) -> CheckpointState {
        let text = match fs::read_to_string(self.checkpoint_path(cell)) {
            Ok(t) => t,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return CheckpointState::Absent,
            Err(_) => return CheckpointState::Invalid,
        };
        match serde_json::from_str::<CellCheckpoint>(&text) {
            Ok(c) if c.fingerprint == self.manifest.fingerprint && c.cell == cell => {
                CheckpointState::Ready(Box::new(c))
            }
            // Parse failures (a partial write from a crashed process) and
            // stale fingerprints are both just "outstanding": the cell is
            // deterministic, so re-running reproduces the exact result.
            _ => CheckpointState::Invalid,
        }
    }

    /// Indices of cells without a valid checkpoint, in cell order.
    pub fn outstanding(&self) -> Vec<usize> {
        (0..self.manifest.cells.len())
            .filter(|&i| !matches!(self.checkpoint_state(i), CheckpointState::Ready(_)))
            .collect()
    }

    /// Removes every checkpoint, claim, and any stale report (fresh start).
    pub fn clear_checkpoints(&self) -> io::Result<()> {
        let ignore_missing = |r: io::Result<()>| match r {
            Ok(()) => Ok(()),
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(()),
            Err(e) => Err(e),
        };
        for i in 0..self.manifest.cells.len() {
            ignore_missing(fs::remove_file(self.checkpoint_path(i)))?;
            ignore_missing(fs::remove_file(self.claim_path(i)))?;
        }
        ignore_missing(fs::remove_file(self.dir.join(REPORT_FILE)))
    }

    /// Executes one cell in-process: sequential attempts on the standard
    /// seed ladder, panics caught per attempt, bounded retries on fresh
    /// seed ladders, terminal classification. Pure in `(spec, workload,
    /// config)` — which is what makes checkpoints resumable.
    fn run_cell(&self, index: usize, spec: &CellSpec, workload: &Workload) -> CellCheckpoint {
        let cfg = &self.manifest.config;
        let tool = Tool::by_name(&spec.tool).expect("validated at create/open");
        let mut failures = Vec::new();
        for retry in 0..=cfg.max_retries {
            let panic_on_seed = spec
                .fault
                .as_ref()
                .filter(|f| retry < f.panics)
                .map(|f| retry_seed(f.attempt, retry));
            let det = Detector::with_config(
                tool.clone(),
                DetectorConfig {
                    max_detection_runs: cfg.max_detection_runs,
                    timing_noise_pct: cfg.timing_noise_pct,
                    deadline_factor: cfg.deadline_factor,
                    telemetry_events: false,
                    panic_on_seed,
                    ..DetectorConfig::default()
                },
            );
            let mut outcomes: Vec<DetectionOutcome> = Vec::with_capacity(spec.attempts as usize);
            let mut panicked = None;
            for a in 0..spec.attempts {
                let seed = retry_seed(a, retry);
                match catch_unwind(AssertUnwindSafe(|| det.detect(workload, seed))) {
                    Ok(o) => outcomes.push(o),
                    Err(p) => {
                        panicked = Some(CellFailure {
                            retry,
                            attempt: a,
                            seed,
                            message: panic_message(p.as_ref()),
                        });
                        break;
                    }
                }
            }
            match panicked {
                None => {
                    let summary = summarize(&det, workload, &outcomes);
                    let status = if summary.any_timeout {
                        CellStatus::TimedOut
                    } else {
                        CellStatus::Completed
                    };
                    return CellCheckpoint {
                        cell: index,
                        fingerprint: self.manifest.fingerprint,
                        spec: spec.clone(),
                        status,
                        summary: Some(summary),
                        failures,
                        retries_used: retry,
                    };
                }
                Some(f) => failures.push(f),
            }
        }
        CellCheckpoint {
            cell: index,
            fingerprint: self.manifest.fingerprint,
            spec: spec.clone(),
            status: CellStatus::Failed,
            summary: None,
            failures,
            retries_used: cfg.max_retries,
        }
    }

    fn save_checkpoint(&self, ckpt: &CellCheckpoint) -> io::Result<()> {
        write_atomic(
            &self.checkpoint_path(ckpt.cell),
            &serde_json::to_string_pretty(ckpt).map_err(|e| corrupt("checkpoint", e))?,
        )
    }

    /// Runs outstanding cells across a worker pool, checkpointing each as
    /// it finishes. `resolve` maps a cell's workload name to the workload
    /// (typically the app registry); an unresolvable name fails before any
    /// cell runs. When every cell is checkpointed afterwards, the final
    /// report is assembled and written to `report.json`.
    pub fn run(
        &self,
        opts: &RunOptions,
        resolve: impl Fn(&str) -> Option<Workload>,
    ) -> io::Result<CampaignProgress> {
        if !opts.resume {
            self.clear_checkpoints()?;
        }
        let todo_all = self.outstanding();
        let skipped = self.manifest.cells.len() - todo_all.len();
        let todo: Vec<usize> = match opts.max_cells {
            Some(k) => todo_all.iter().copied().take(k).collect(),
            None => todo_all,
        };
        // Resolve every workload up front: failing after half the grid ran
        // would waste the pool, and the error names the missing input.
        let mut work: Vec<(usize, Workload)> = Vec::with_capacity(todo.len());
        for &i in &todo {
            let name = &self.manifest.cells[i].workload;
            let w = resolve(name).ok_or_else(|| {
                io::Error::new(
                    io::ErrorKind::InvalidInput,
                    format!("cell {i}: unknown workload {name}"),
                )
            })?;
            work.push((i, w));
        }
        let ran: Mutex<Vec<(usize, CellStatus)>> = Mutex::new(Vec::with_capacity(work.len()));
        let first_io_error: Mutex<Option<io::Error>> = Mutex::new(None);
        if !work.is_empty() {
            let jobs = opts.jobs.max(1).min(work.len());
            let next = AtomicUsize::new(0);
            std::thread::scope(|s| {
                for _ in 0..jobs {
                    s.spawn(|| loop {
                        let k = next.fetch_add(1, Ordering::Relaxed);
                        let Some((idx, workload)) = work.get(k) else {
                            break;
                        };
                        let ckpt = self.run_cell(*idx, &self.manifest.cells[*idx], workload);
                        let status = ckpt.status;
                        match self.save_checkpoint(&ckpt) {
                            Ok(()) => ran.lock().push((*idx, status)),
                            Err(e) => {
                                let mut g = first_io_error.lock();
                                if g.is_none() {
                                    *g = Some(e);
                                }
                            }
                        }
                    });
                }
            });
        }
        if let Some(e) = first_io_error.into_inner() {
            return Err(e);
        }
        let mut ran = ran.into_inner();
        ran.sort_unstable_by_key(|(i, _)| *i);
        let outstanding = self.outstanding();
        let report = if outstanding.is_empty() {
            let report = self.assemble_report()?;
            write_atomic(
                &self.dir.join(REPORT_FILE),
                &serde_json::to_string_pretty(&report).map_err(|e| corrupt(REPORT_FILE, e))?,
            )?;
            Some(report)
        } else {
            None
        };
        Ok(CampaignProgress {
            ran,
            skipped,
            outstanding: outstanding.len(),
            report,
        })
    }

    fn claim_path(&self, cell: usize) -> PathBuf {
        self.dir.join(format!("claim-{cell:04}.json"))
    }

    /// Age of the claim file at `path`, by mtime. `None` when the claim no
    /// longer exists (released or stolen between scan and stat).
    ///
    /// A *future* mtime (clock skew between NFS hosts, a stepped clock)
    /// is clamped by the lease: skew within one lease reads as a fresh
    /// claim — the lease recovers it one lease later, same as a backwards
    /// step — but skew *beyond* the lease reads as immediately stale,
    /// because no live worker's heartbeat can legitimately produce an
    /// mtime that far ahead. Without the second arm, a single garbage
    /// mtime years in the future would hold the claim forever.
    fn claim_age(
        path: &Path,
        lease: std::time::Duration,
    ) -> io::Result<Option<std::time::Duration>> {
        match fs::metadata(path) {
            Ok(m) => {
                let age = match m.modified()?.elapsed() {
                    Ok(age) => age,
                    Err(skew) if skew.duration() <= lease => std::time::Duration::ZERO,
                    Err(_) => lease,
                };
                Ok(Some(age))
            }
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(None),
            Err(e) => Err(e),
        }
    }

    /// Tries to claim `cell` for `opts.worker`. Returns whether the claim
    /// was won, and whether winning it required recovering a stale claim.
    ///
    /// Exclusive create (`O_EXCL`) is the arbiter for fresh claims; for
    /// stale ones (mtime at or beyond the lease) the takeover renames the
    /// old claim to a worker-unique name first — rename succeeds for
    /// exactly one thief, the rest observe `NotFound` and retry the
    /// exclusive create from scratch. Claim *contents* never gate the
    /// protocol, so scanning a claim mid-write cannot misfire.
    fn try_claim(&self, cell: usize, opts: &WorkOptions) -> io::Result<Option<bool>> {
        use std::io::Write as _;
        let path = self.claim_path(cell);
        let mut recovered = false;
        loop {
            match fs::OpenOptions::new()
                .write(true)
                .create_new(true)
                .open(&path)
            {
                Ok(mut f) => {
                    let claim = WorkerClaim {
                        cell,
                        fingerprint: self.manifest.fingerprint,
                        worker: opts.worker.clone(),
                        pid: std::process::id(),
                    };
                    let text = serde_json::to_string_pretty(&claim)
                        .map_err(|e| corrupt("claim", e))?;
                    f.write_all(text.as_bytes())?;
                    return Ok(Some(recovered));
                }
                Err(e) if e.kind() == io::ErrorKind::AlreadyExists => {
                    let lease = std::time::Duration::from_secs(opts.lease_secs);
                    let stale = match Self::claim_age(&path, lease)? {
                        // Released between create_new and stat: retry.
                        None => continue,
                        Some(age) => age >= lease,
                    };
                    if !stale {
                        return Ok(None);
                    }
                    let graveyard = self.dir.join(format!(
                        ".claim-{cell:04}.stale.{}.{}",
                        std::process::id(),
                        opts.worker.len()
                    ));
                    match fs::rename(&path, &graveyard) {
                        Ok(()) => {
                            let _ = fs::remove_file(&graveyard);
                            recovered = true;
                            continue;
                        }
                        // Another thief won the rename (or the owner
                        // released); retry the exclusive create.
                        Err(e) if e.kind() == io::ErrorKind::NotFound => continue,
                        Err(e) => return Err(e),
                    }
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// Releases this worker's claim on `cell` (best effort: a missing
    /// claim means a thief already recovered it, which is fine — the
    /// checkpoint bytes are identical either way).
    fn release_claim(&self, cell: usize) {
        let _ = fs::remove_file(self.claim_path(cell));
    }

    /// Works the campaign as one of N independent worker processes sharing
    /// the directory: scan for outstanding cells, claim one through the
    /// `O_EXCL` lease protocol, run it, checkpoint it, release the claim,
    /// repeat. No coordinator exists; the filesystem is the cluster.
    ///
    /// The worker that observes the last checkpoint assembles and writes
    /// `report.json`; racing finishers write byte-identical reports.
    pub fn work(
        &self,
        opts: &WorkOptions,
        resolve: impl Fn(&str) -> Option<Workload>,
    ) -> io::Result<WorkProgress> {
        let mut ran = Vec::new();
        let mut recovered = 0usize;
        'outer: loop {
            let mut progressed = false;
            for i in 0..self.manifest.cells.len() {
                if opts.max_cells.is_some_and(|k| ran.len() >= k) {
                    break 'outer;
                }
                if matches!(self.checkpoint_state(i), CheckpointState::Ready(_)) {
                    continue;
                }
                match self.try_claim(i, opts)? {
                    None => continue,
                    Some(was_stale) => recovered += usize::from(was_stale),
                }
                // Re-check under the claim: the previous owner may have
                // checkpointed the cell right before losing its claim.
                if matches!(self.checkpoint_state(i), CheckpointState::Ready(_)) {
                    self.release_claim(i);
                    continue;
                }
                let spec = &self.manifest.cells[i];
                let Some(workload) = resolve(&spec.workload) else {
                    self.release_claim(i);
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidInput,
                        format!("cell {i}: unknown workload {}", spec.workload),
                    ));
                };
                // Keep the claim's mtime fresh while the cell runs, so a
                // cell longer than the lease isn't stolen mid-run.
                let heartbeat = ClaimHeartbeat::spawn(
                    self.claim_path(i),
                    std::time::Duration::from_secs(opts.lease_secs.max(1)) / 3,
                );
                let ckpt = self.run_cell(i, spec, &workload);
                drop(heartbeat);
                let status = ckpt.status;
                let saved = self.save_checkpoint(&ckpt);
                self.release_claim(i);
                saved?;
                ran.push((i, status));
                progressed = true;
            }
            if self.outstanding().is_empty() {
                break;
            }
            if !progressed {
                // Everything left is claimed by live workers.
                if !opts.wait {
                    break;
                }
                std::thread::sleep(std::time::Duration::from_millis(opts.poll_ms.max(1)));
            }
        }
        let outstanding = self.outstanding();
        let report = if outstanding.is_empty() {
            let report = self.assemble_report()?;
            write_atomic(
                &self.dir.join(REPORT_FILE),
                &serde_json::to_string_pretty(&report).map_err(|e| corrupt(REPORT_FILE, e))?,
            )?;
            Some(report)
        } else {
            None
        };
        Ok(WorkProgress {
            ran,
            recovered,
            outstanding: outstanding.len(),
            report,
        })
    }

    /// A point-in-time progress view across every worker sharing this
    /// directory: per-cell durable state (quarantined cells carry their
    /// last panic), live claims with worker identity and age, and roll-up
    /// counts. This is what `campaign status` (and its `--json` mode)
    /// renders.
    pub fn status(&self) -> io::Result<CampaignStatus> {
        let mut cells = Vec::with_capacity(self.manifest.cells.len());
        let mut claims = Vec::new();
        let (mut done, mut completed, mut timed_out) = (0usize, 0usize, 0usize);
        let mut quarantined = Vec::new();
        for (i, spec) in self.manifest.cells.iter().enumerate() {
            let mut line = CellStatusLine {
                cell: i,
                workload: spec.workload.clone(),
                tool: spec.tool.clone(),
                state: "outstanding".into(),
                retries_used: None,
                last_failure: None,
                claim: None,
            };
            if let CheckpointState::Ready(c) = self.checkpoint_state(i) {
                done += 1;
                line.retries_used = Some(c.retries_used);
                line.state = match c.status {
                    CellStatus::Completed => {
                        completed += 1;
                        "completed".into()
                    }
                    CellStatus::TimedOut => {
                        timed_out += 1;
                        "timed_out".into()
                    }
                    CellStatus::Failed => {
                        quarantined.push(i);
                        line.last_failure =
                            c.failures.last().map(|f| f.message.clone());
                        "failed".into()
                    }
                };
            } else {
                let path = self.claim_path(i);
                let lease = std::time::Duration::from_secs(WorkOptions::default().lease_secs);
                if let Some(age) = Self::claim_age(&path, lease)? {
                    let parsed: Option<WorkerClaim> = fs::read_to_string(&path)
                        .ok()
                        .and_then(|t| serde_json::from_str(&t).ok());
                    let info = ClaimInfo {
                        cell: i,
                        worker: parsed
                            .as_ref()
                            .map(|c| c.worker.clone())
                            .unwrap_or_else(|| "?".into()),
                        pid: parsed.map(|c| c.pid).unwrap_or(0),
                        age_secs: age.as_secs(),
                    };
                    line.state = "claimed".into();
                    line.claim = Some(info.clone());
                    claims.push(info);
                }
            }
            cells.push(line);
        }
        Ok(CampaignStatus {
            total: self.manifest.cells.len(),
            done,
            completed,
            timed_out,
            quarantined,
            outstanding: self.manifest.cells.len() - done,
            claims,
            report_written: self.dir.join(REPORT_FILE).exists(),
            cells,
        })
    }

    /// Assembles the report from the checkpoints on disk (cell order), or
    /// errors if any cell is still outstanding.
    pub fn assemble_report(&self) -> io::Result<CampaignReport> {
        let mut cells = Vec::with_capacity(self.manifest.cells.len());
        for i in 0..self.manifest.cells.len() {
            match self.checkpoint_state(i) {
                CheckpointState::Ready(c) => cells.push(*c),
                _ => {
                    return Err(io::Error::new(
                        io::ErrorKind::NotFound,
                        format!("cell {i} has no valid checkpoint; run the campaign first"),
                    ))
                }
            }
        }
        // A pure fold in cell order: folding resumed checkpoints is
        // bit-identical to folding freshly computed ones.
        let mut telemetry = TelemetrySummary::default();
        let mut completed = 0;
        let mut timed_out = 0;
        let mut quarantined = Vec::new();
        for c in &cells {
            match c.status {
                CellStatus::Completed => completed += 1,
                CellStatus::TimedOut => timed_out += 1,
                CellStatus::Failed => quarantined.push(c.cell),
            }
            if let Some(s) = &c.summary {
                telemetry.merge(&s.telemetry);
            }
        }
        Ok(CampaignReport {
            cells,
            completed,
            timed_out,
            quarantined,
            telemetry,
        })
    }

    /// Loads the persisted `report.json`, when one was written.
    pub fn load_report(&self) -> io::Result<Option<CampaignReport>> {
        match fs::read_to_string(self.dir.join(REPORT_FILE)) {
            Ok(t) => serde_json::from_str(&t)
                .map(Some)
                .map_err(|e| corrupt(REPORT_FILE, e)),
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(None),
            Err(e) => Err(e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use waffle_sim::{SimTime, WorkloadBuilder};

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "waffle-campaign-{tag}-{}",
            std::process::id()
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn racy(name: &str) -> Workload {
        let mut b = WorkloadBuilder::new(name);
        let o = b.object("o");
        let started = b.event("s");
        let worker = b.script("worker", move |s| {
            s.wait(started)
                .compute(SimTime::from_us(150))
                .use_(o, "W.use:1", SimTime::from_us(10));
        });
        let main = b.script("main", move |s| {
            s.init(o, "M.init:1", SimTime::from_us(10))
                .fork(worker)
                .signal(started)
                .compute(SimTime::from_us(700))
                .dispose(o, "M.dispose:9", SimTime::from_us(10))
                .join_children();
        });
        b.main(main);
        b.build()
    }

    fn resolve(name: &str) -> Option<Workload> {
        name.starts_with("camp.").then(|| racy(name))
    }

    fn small_config() -> CampaignConfig {
        CampaignConfig {
            max_detection_runs: 6,
            ..CampaignConfig::default()
        }
    }

    fn grid(n: usize) -> Vec<CellSpec> {
        (0..n)
            .map(|i| CellSpec::new(format!("camp.w{i}"), "waffle", 3))
            .collect()
    }

    #[test]
    fn manifest_round_trips_and_rejects_edits() {
        let dir = tmpdir("manifest");
        let c = Campaign::create(&dir, small_config(), grid(2)).unwrap();
        let reopened = Campaign::open(&dir).unwrap();
        assert_eq!(reopened.manifest(), c.manifest());
        // A second create on the same directory is refused.
        assert_eq!(
            Campaign::create(&dir, small_config(), grid(2))
                .unwrap_err()
                .kind(),
            io::ErrorKind::AlreadyExists
        );
        // An edited manifest no longer matches its fingerprint.
        let path = dir.join(MANIFEST_FILE);
        let edited = fs::read_to_string(&path).unwrap().replace("\"attempts\": 3", "\"attempts\": 4");
        fs::write(&path, edited).unwrap();
        assert_eq!(
            Campaign::open(&dir).unwrap_err().kind(),
            io::ErrorKind::InvalidData
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn unknown_tools_and_empty_grids_are_rejected() {
        let dir = tmpdir("reject");
        assert!(Campaign::create(&dir, small_config(), Vec::new()).is_err());
        assert!(Campaign::create(
            &dir,
            small_config(),
            vec![CellSpec::new("camp.w0", "no-such-tool", 3)]
        )
        .is_err());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn run_checkpoints_every_cell_and_reports() {
        let dir = tmpdir("run");
        let c = Campaign::create(&dir, small_config(), grid(3)).unwrap();
        let progress = c.run(&RunOptions::default(), resolve).unwrap();
        assert_eq!(progress.ran.len(), 3);
        assert_eq!(progress.outstanding, 0);
        let report = progress.report.expect("complete campaign reports");
        assert_eq!(report.completed, 3);
        assert!(report.quarantined.is_empty());
        assert!(report.telemetry.runs > 0, "telemetry folded from cells");
        assert_eq!(c.load_report().unwrap().unwrap(), report);
        for i in 0..3 {
            assert!(matches!(c.checkpoint_state(i), CheckpointState::Ready(_)));
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_checkpoint_is_outstanding_and_rerun_restores_it() {
        let dir = tmpdir("corrupt");
        let c = Campaign::create(&dir, small_config(), grid(2)).unwrap();
        c.run(&RunOptions::default(), resolve).unwrap();
        let intact = fs::read_to_string(c.checkpoint_path(1)).unwrap();
        // Simulate a partial write by a crashed process.
        let full = fs::read_to_string(c.checkpoint_path(0)).unwrap();
        fs::write(c.checkpoint_path(0), &full[..full.len() / 3]).unwrap();
        assert_eq!(c.checkpoint_state(0), CheckpointState::Invalid);
        assert_eq!(c.outstanding(), vec![0]);
        let progress = c
            .run(
                &RunOptions {
                    resume: true,
                    ..RunOptions::default()
                },
                resolve,
            )
            .unwrap();
        assert_eq!(progress.ran, vec![(0, CellStatus::Completed)]);
        assert_eq!(progress.skipped, 1);
        // Determinism: the re-run reproduces the identical checkpoint.
        assert_eq!(fs::read_to_string(c.checkpoint_path(0)).unwrap(), full);
        assert_eq!(fs::read_to_string(c.checkpoint_path(1)).unwrap(), intact);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn faulty_cell_recovers_on_a_fresh_seed_retry() {
        let dir = tmpdir("retry");
        let mut cells = grid(2);
        // Panics on the first try only; retry 1's fresh seeds succeed.
        cells[1].fault = Some(CellFault { attempt: 1, panics: 1 });
        let c = Campaign::create(&dir, small_config(), cells).unwrap();
        let report = c
            .run(&RunOptions::default(), resolve)
            .unwrap()
            .report
            .unwrap();
        assert_eq!(report.completed, 2);
        let cell = &report.cells[1];
        assert_eq!(cell.status, CellStatus::Completed);
        assert_eq!(cell.retries_used, 1);
        assert_eq!(cell.failures.len(), 1);
        assert_eq!(cell.failures[0].attempt, 1);
        assert_eq!(cell.failures[0].seed, retry_seed(1, 0));
        assert!(cell.failures[0].message.contains("fault injection"));
        // The recovered summary comes from the retry ladder, not the
        // standard one — but it is still a real summary.
        assert_eq!(cell.summary.as_ref().unwrap().attempts, 3);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn persistently_panicking_cell_is_quarantined_others_intact() {
        let dir = tmpdir("quarantine");
        let mut cells = grid(3);
        cells[1].fault = Some(CellFault {
            attempt: 0,
            panics: u32::MAX,
        });
        let c = Campaign::create(&dir, small_config(), cells).unwrap();
        let progress = c
            .run(
                &RunOptions {
                    jobs: 4,
                    ..RunOptions::default()
                },
                resolve,
            )
            .unwrap();
        let report = progress.report.expect("campaign completes despite the panic");
        assert_eq!(report.quarantined, vec![1]);
        assert_eq!(report.completed, 2);
        let failed = &report.cells[1];
        assert_eq!(failed.status, CellStatus::Failed);
        assert!(failed.summary.is_none());
        // max_retries = 2 ⇒ 3 tries, each recorded with its panic index.
        assert_eq!(failed.failures.len(), 3);
        assert!(failed.failures.iter().all(|f| f.attempt == 0));
        for (i, f) in failed.failures.iter().enumerate() {
            assert_eq!(f.retry, i as u32);
        }
        // The neighbours' results are intact and identical to a grid that
        // never contained the bad cell.
        let reference = {
            let rdir = tmpdir("quarantine-ref");
            let rc = Campaign::create(&rdir, small_config(), grid(3)).unwrap();
            let r = rc.run(&RunOptions::default(), resolve).unwrap().report.unwrap();
            let _ = fs::remove_dir_all(&rdir);
            r
        };
        assert_eq!(report.cells[0].summary, reference.cells[0].summary);
        assert_eq!(report.cells[2].summary, reference.cells[2].summary);
        assert!(report.render().contains("quarantine:"));
        assert!(report.render().contains("fault injection"));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn two_workers_share_the_grid_and_reproduce_the_single_process_report() {
        // Reference: one process, plain `run`.
        let rdir = tmpdir("work-ref");
        let rc = Campaign::create(&rdir, small_config(), grid(4)).unwrap();
        rc.run(&RunOptions::default(), resolve).unwrap();
        let reference = fs::read(rdir.join(REPORT_FILE)).unwrap();

        // Two concurrent workers on a fresh directory with the same grid.
        let dir = tmpdir("work-pair");
        let c = Campaign::create(&dir, small_config(), grid(4)).unwrap();
        let (pa, pb) = std::thread::scope(|s| {
            let mk = |name: &str| WorkOptions {
                worker: name.into(),
                lease_secs: 3600, // never steal from a live peer here
                poll_ms: 5,
                ..WorkOptions::default()
            };
            let ca = c.clone();
            let cb = c.clone();
            let a = s.spawn(move || ca.work(&mk("a"), resolve).unwrap());
            let b = s.spawn(move || cb.work(&mk("b"), resolve).unwrap());
            (a.join().unwrap(), b.join().unwrap())
        });
        // Between them the workers ran every cell exactly once (live
        // claims were honored), and both observed completion.
        let mut cells: Vec<usize> = pa.ran.iter().chain(&pb.ran).map(|(i, _)| *i).collect();
        cells.sort_unstable();
        assert_eq!(cells, vec![0, 1, 2, 3], "each cell ran exactly once");
        assert_eq!(pa.outstanding, 0);
        assert_eq!(pb.outstanding, 0);
        assert!(pa.report.is_some() && pb.report.is_some());
        // Byte-identical to the single-process campaign.
        assert_eq!(fs::read(dir.join(REPORT_FILE)).unwrap(), reference);
        // All claims released.
        for i in 0..4 {
            assert!(!c.claim_path(i).exists(), "claim {i} released");
        }
        let _ = fs::remove_dir_all(&dir);
        let _ = fs::remove_dir_all(&rdir);
    }

    #[test]
    fn stale_claim_from_a_dead_worker_is_recovered() {
        let dir = tmpdir("work-stale");
        let c = Campaign::create(&dir, small_config(), grid(2)).unwrap();
        // A worker died mid-cell: its claim file survives, no checkpoint.
        fs::write(
            c.claim_path(0),
            serde_json::to_string_pretty(&WorkerClaim {
                cell: 0,
                fingerprint: c.manifest().fingerprint,
                worker: "dead-worker".into(),
                pid: 1,
            })
            .unwrap(),
        )
        .unwrap();
        let progress = c
            .work(
                &WorkOptions {
                    worker: "rescuer".into(),
                    lease_secs: 0, // everything is immediately stale
                    ..WorkOptions::default()
                },
                resolve,
            )
            .unwrap();
        assert_eq!(progress.recovered, 1, "the dead worker's claim was taken over");
        assert_eq!(progress.ran.len(), 2);
        assert!(progress.report.is_some());
        // The recovered cell's checkpoint matches a clean single-process run.
        let rdir = tmpdir("work-stale-ref");
        let rc = Campaign::create(&rdir, small_config(), grid(2)).unwrap();
        rc.run(&RunOptions::default(), resolve).unwrap();
        assert_eq!(
            fs::read(dir.join(REPORT_FILE)).unwrap(),
            fs::read(rdir.join(REPORT_FILE)).unwrap()
        );
        let _ = fs::remove_dir_all(&dir);
        let _ = fs::remove_dir_all(&rdir);
    }

    #[test]
    fn live_claims_are_honored_and_status_reports_them() {
        let dir = tmpdir("work-live");
        let c = Campaign::create(&dir, small_config(), grid(2)).unwrap();
        // Another (live) worker holds cell 0: fresh claim, long lease.
        fs::write(
            c.claim_path(0),
            serde_json::to_string_pretty(&WorkerClaim {
                cell: 0,
                fingerprint: c.manifest().fingerprint,
                worker: "peer".into(),
                pid: 42,
            })
            .unwrap(),
        )
        .unwrap();
        let progress = c
            .work(
                &WorkOptions {
                    worker: "polite".into(),
                    lease_secs: 3600,
                    wait: false, // don't poll for the peer
                    ..WorkOptions::default()
                },
                resolve,
            )
            .unwrap();
        assert_eq!(progress.ran, vec![(1, CellStatus::Completed)]);
        assert_eq!(progress.recovered, 0);
        assert_eq!(progress.outstanding, 1, "the claimed cell is still open");
        assert!(progress.report.is_none());

        // `status` surfaces the live claim and the per-cell states.
        let status = c.status().unwrap();
        assert_eq!(status.total, 2);
        assert_eq!(status.done, 1);
        assert_eq!(status.outstanding, 1);
        assert_eq!(status.claims.len(), 1);
        assert_eq!(status.claims[0].worker, "peer");
        assert_eq!(status.claims[0].pid, 42);
        assert_eq!(status.cells[0].state, "claimed");
        assert_eq!(status.cells[1].state, "completed");
        assert!(!status.report_written);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn status_surfaces_quarantined_cells_with_their_panics() {
        let dir = tmpdir("status-quarantine");
        let mut cells = grid(2);
        cells[0].fault = Some(CellFault {
            attempt: 0,
            panics: u32::MAX,
        });
        let c = Campaign::create(&dir, small_config(), cells).unwrap();
        c.run(&RunOptions::default(), resolve).unwrap();
        let status = c.status().unwrap();
        assert_eq!(status.quarantined, vec![0]);
        assert_eq!(status.cells[0].state, "failed");
        assert!(status.cells[0]
            .last_failure
            .as_deref()
            .unwrap()
            .contains("fault injection"));
        assert_eq!(status.completed, 1);
        assert!(status.report_written);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn future_claim_mtimes_are_lease_clamped_not_immortal() {
        use std::time::{Duration, SystemTime};
        let dir = tmpdir("future-claim");
        let c = Campaign::create(&dir, small_config(), grid(2)).unwrap();
        let lease = Duration::from_secs(3600);

        // Skew within one lease: reads fresh (age 0), honored like any
        // live claim.
        let path = c.claim_path(0);
        fs::write(&path, "{}").unwrap();
        let f = fs::OpenOptions::new().write(true).open(&path).unwrap();
        f.set_modified(SystemTime::now() + lease / 2).unwrap();
        drop(f);
        assert_eq!(
            Campaign::claim_age(&path, lease).unwrap(),
            Some(Duration::ZERO)
        );

        // Skew beyond the lease: no live heartbeat can produce it, so it
        // reads stale immediately — before the fix this claim was
        // unstealable until the wall clock caught up to the mtime.
        let f = fs::OpenOptions::new().write(true).open(&path).unwrap();
        f.set_modified(SystemTime::now() + lease * 10).unwrap();
        drop(f);
        let age = Campaign::claim_age(&path, lease).unwrap().unwrap();
        assert!(age >= lease, "far-future mtime must read stale, got {age:?}");

        // And the worker loop actually recovers it.
        let progress = c
            .work(
                &WorkOptions {
                    worker: "thief".into(),
                    lease_secs: lease.as_secs(),
                    wait: false,
                    ..WorkOptions::default()
                },
                resolve,
            )
            .unwrap();
        assert_eq!(progress.ran.len(), 2);
        assert_eq!(progress.recovered, 1, "the garbage-mtime claim was stolen");
        assert!(progress.report.is_some());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn heartbeat_refreshes_the_claim_and_respects_a_steal() {
        use std::time::{Duration, SystemTime};
        let dir = tmpdir("heartbeat");
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("claim-0000.json");
        fs::write(&path, "{}").unwrap();
        // Age the file artificially so a refresh is observable.
        let old = SystemTime::now() - Duration::from_secs(500);
        let f = fs::OpenOptions::new().write(true).open(&path).unwrap();
        f.set_modified(old).unwrap();
        drop(f);

        let hb = ClaimHeartbeat::spawn(path.clone(), Duration::from_millis(5));
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        loop {
            let age = Campaign::claim_age(&path, Duration::from_secs(3600))
                .unwrap()
                .unwrap();
            if age < Duration::from_secs(400) {
                break; // refreshed well past the artificial 500 s age
            }
            assert!(
                std::time::Instant::now() < deadline,
                "heartbeat never refreshed the claim (age {age:?})"
            );
            std::thread::sleep(Duration::from_millis(5));
        }

        // A thief renames the claim away: the heartbeat must not
        // resurrect the file.
        fs::remove_file(&path).unwrap();
        std::thread::sleep(Duration::from_millis(30));
        assert!(!path.exists(), "heartbeat recreated a stolen claim");
        drop(hb); // prompt stop, no lingering touches
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn retry_seeds_are_disjoint_from_the_standard_ladder() {
        // Attempts are u32 and attempt_seed(a) = a + 1 < 2^33; every retry
        // ladder lives in its own upper range.
        assert_eq!(retry_seed(0, 0), attempt_seed(0));
        assert_eq!(retry_seed(5, 0), attempt_seed(5));
        assert!(retry_seed(0, 1) > u64::from(u32::MAX));
        assert_ne!(retry_seed(3, 1), retry_seed(3, 2));
    }
}
