//! Structured run telemetry for the detection runtime.
//!
//! The paper's evaluation (§6, Tables 4–7) is built on per-run injection
//! behaviour: how many delays fired, how many were skipped by probability
//! decay versus interference control, and how the decay state evolved over
//! the course of a campaign. This crate is the observability layer that
//! exposes that behaviour as data instead of ad-hoc log lines:
//!
//! - [`journal`] — a cheap, allocation-conscious per-run event journal
//!   ([`RunJournal`]) recording every injection decision (fired /
//!   skipped-probability / skipped-interference / decay-step) with its
//!   site, thread, and sim-time, next to always-on counters;
//! - [`metrics`] — sim-time histograms ([`SimTimeHistogram`]) for delay
//!   lengths and instrumentation overhead, cross-run aggregation
//!   ([`TelemetrySummary`]), and a deterministic name-keyed
//!   [`MetricsRegistry`] for campaign-level breakdowns.
//!
//! Every policy in `waffle-inject` owns a [`RunTelemetry`] recorder; the
//! detector collects the finished journals per run, and the experiment
//! layer merges them **in attempt order**, so aggregated telemetry is
//! bit-identical at any `--jobs` worker count — the same determinism
//! contract the experiment engine gives for summaries.
//!
//! Counters are always on (they are a handful of integer increments per
//! decision); the event journal is opt-in per run
//! ([`RunTelemetry::with_events`]) so the hot path stays allocation-free
//! unless a campaign actually asked for `--telemetry`.

pub mod journal;
pub mod metrics;

pub use journal::{AttemptJournal, EventKind, JournalEvent, RunJournal, RunTelemetry, TelemetryCounters};
pub use metrics::{MetricsRegistry, SimTimeHistogram, TelemetrySummary};
