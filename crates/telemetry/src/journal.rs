//! The per-run injection event journal.
//!
//! A [`RunTelemetry`] recorder lives inside a delay-injection policy for
//! exactly one run. Counters and histograms update on every decision;
//! individual [`JournalEvent`]s are recorded only when the recorder was
//! built with [`RunTelemetry::with_events`], keeping the default hot path
//! free of per-decision allocation.

use serde::{Deserialize, Serialize};
use waffle_mem::SiteId;
use waffle_sim::{SimTime, ThreadId};

use crate::metrics::SimTimeHistogram;

/// What happened at one injection decision point.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum EventKind {
    /// A delay fired at the site.
    Injected,
    /// The probability roll declined the injection.
    SkippedProbability,
    /// Interference control suppressed the injection (§4.4): a delay at an
    /// interfering location was ongoing in another thread.
    SkippedInterference,
    /// The site's injection probability decayed after a fired delay (§2);
    /// `permille` carries the post-step probability.
    DecayStep,
}

/// One entry of the event journal.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct JournalEvent {
    /// What happened.
    pub kind: EventKind,
    /// The candidate site the decision was about.
    pub site: SiteId,
    /// The thread that reached the site.
    pub thread: ThreadId,
    /// Virtual time of the decision.
    pub time: SimTime,
    /// Injected delay length ([`EventKind::Injected`] only; zero otherwise).
    pub delay: SimTime,
    /// Injection probability in per-mille: the probability *used* for a
    /// roll, or the post-step probability for [`EventKind::DecayStep`].
    pub permille: u32,
}

/// Always-on counters of one run's injection decisions.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TelemetryCounters {
    /// Delays injected.
    pub injected: u64,
    /// Injections declined by the probability roll.
    pub skipped_probability: u64,
    /// Injections suppressed by interference control.
    pub skipped_interference: u64,
    /// Probability-decay steps applied (one per fired delay).
    pub decay_steps: u64,
    /// Instrumented accesses observed by the policy.
    pub instrumented_ops: u64,
}

impl TelemetryCounters {
    /// Accumulates another counter set into this one.
    pub fn merge(&mut self, other: &TelemetryCounters) {
        self.injected += other.injected;
        self.skipped_probability += other.skipped_probability;
        self.skipped_interference += other.skipped_interference;
        self.decay_steps += other.decay_steps;
        self.instrumented_ops += other.instrumented_ops;
    }

    /// Injection decision points reached (fired + both skip classes).
    pub fn decisions(&self) -> u64 {
        self.injected + self.skipped_probability + self.skipped_interference
    }
}

/// The finished journal of one detection run.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct RunJournal {
    /// Decision counters.
    pub counters: TelemetryCounters,
    /// Histogram of injected delay lengths.
    pub delay_hist: SimTimeHistogram,
    /// Histogram of per-access instrumentation overhead.
    pub overhead_hist: SimTimeHistogram,
    /// The event stream, in decision order (empty unless event recording
    /// was enabled for the run).
    pub events: Vec<JournalEvent>,
}

impl RunJournal {
    /// Serializes the journal.
    pub fn to_json(&self) -> Result<String, serde_json::Error> {
        serde_json::to_string(self)
    }

    /// Parses a persisted journal.
    pub fn from_json(s: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(s)
    }
}

/// The in-run recorder: counters always, events on request.
#[derive(Debug, Clone, Default)]
pub struct RunTelemetry {
    journal: RunJournal,
    record_events: bool,
}

impl RunTelemetry {
    /// A recorder that keeps counters and histograms only (the default).
    pub fn counters_only() -> Self {
        Self::default()
    }

    /// A recorder that additionally journals every decision event.
    pub fn with_events() -> Self {
        Self {
            journal: RunJournal::default(),
            record_events: true,
        }
    }

    /// Whether decision events are being journaled.
    pub fn events_enabled(&self) -> bool {
        self.record_events
    }

    /// Turns decision-event journaling on or off (counters stay on).
    pub fn set_events(&mut self, on: bool) {
        self.record_events = on;
    }

    /// The journal recorded so far.
    pub fn journal(&self) -> &RunJournal {
        &self.journal
    }

    /// Takes the finished journal, resetting the recorder for another run
    /// (event recording stays as configured).
    pub fn take_journal(&mut self) -> RunJournal {
        std::mem::take(&mut self.journal)
    }

    fn push(&mut self, kind: EventKind, site: SiteId, thread: ThreadId, time: SimTime, delay: SimTime, permille: u32) {
        if self.record_events {
            self.journal.events.push(JournalEvent {
                kind,
                site,
                thread,
                time,
                delay,
                permille,
            });
        }
    }

    /// Records a fired delay of length `delay`, rolled at probability
    /// `permille`.
    pub fn injected(&mut self, site: SiteId, thread: ThreadId, time: SimTime, delay: SimTime, permille: u32) {
        self.journal.counters.injected += 1;
        self.journal.delay_hist.record(delay);
        self.push(EventKind::Injected, site, thread, time, delay, permille);
    }

    /// Records an injection declined by the probability roll at `permille`.
    pub fn skipped_probability(&mut self, site: SiteId, thread: ThreadId, time: SimTime, permille: u32) {
        self.journal.counters.skipped_probability += 1;
        self.push(EventKind::SkippedProbability, site, thread, time, SimTime::ZERO, permille);
    }

    /// Records an injection suppressed by interference control (§4.4).
    pub fn skipped_interference(&mut self, site: SiteId, thread: ThreadId, time: SimTime) {
        self.journal.counters.skipped_interference += 1;
        self.push(EventKind::SkippedInterference, site, thread, time, SimTime::ZERO, 0);
    }

    /// Records a probability-decay step; `permille` is the post-step value.
    pub fn decay_step(&mut self, site: SiteId, thread: ThreadId, time: SimTime, permille: u32) {
        self.journal.counters.decay_steps += 1;
        self.push(EventKind::DecayStep, site, thread, time, SimTime::ZERO, permille);
    }

    /// Records one instrumented access and the overhead charged for it.
    pub fn instrumented(&mut self, overhead: SimTime) {
        self.journal.counters.instrumented_ops += 1;
        self.journal.overhead_hist.record(overhead);
    }
}

/// All journals of one detection attempt, in run order, with enough
/// context to aggregate across attempts and campaigns.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct AttemptJournal {
    /// Workload (test input) name.
    pub workload: String,
    /// Tool that drove the runs.
    pub tool: String,
    /// The attempt seed (the paper's repetition index).
    pub attempt_seed: u64,
    /// One journal per detection run, in execution order.
    pub runs: Vec<RunJournal>,
}

impl AttemptJournal {
    /// Serializes the attempt journal.
    pub fn to_json(&self) -> Result<String, serde_json::Error> {
        serde_json::to_string_pretty(self)
    }

    /// Parses a persisted attempt journal.
    pub fn from_json(s: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(s)
    }

    /// Counters summed over all runs of the attempt.
    pub fn totals(&self) -> TelemetryCounters {
        let mut out = TelemetryCounters::default();
        for run in &self.runs {
            out.merge(&run.counters);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use waffle_sim::time::us;

    #[test]
    fn counters_update_without_event_recording() {
        let mut t = RunTelemetry::counters_only();
        t.injected(SiteId(1), ThreadId(0), us(10), us(115), 1000);
        t.decay_step(SiteId(1), ThreadId(0), us(10), 850);
        t.skipped_probability(SiteId(1), ThreadId(0), us(20), 850);
        t.skipped_interference(SiteId(2), ThreadId(1), us(30));
        t.instrumented(us(1));
        let j = t.take_journal();
        assert_eq!(j.counters.injected, 1);
        assert_eq!(j.counters.decay_steps, 1);
        assert_eq!(j.counters.skipped_probability, 1);
        assert_eq!(j.counters.skipped_interference, 1);
        assert_eq!(j.counters.instrumented_ops, 1);
        assert_eq!(j.counters.decisions(), 3);
        assert!(j.events.is_empty(), "events off by default");
        assert_eq!(j.delay_hist.count(), 1);
        assert_eq!(j.overhead_hist.sum_us(), 1);
    }

    #[test]
    fn event_journal_preserves_decision_order_and_payloads() {
        let mut t = RunTelemetry::with_events();
        assert!(t.events_enabled());
        t.skipped_interference(SiteId(3), ThreadId(2), us(5));
        t.injected(SiteId(3), ThreadId(2), us(7), us(200), 700);
        t.decay_step(SiteId(3), ThreadId(2), us(7), 550);
        let j = t.take_journal();
        assert_eq!(j.events.len(), 3);
        assert_eq!(j.events[0].kind, EventKind::SkippedInterference);
        assert_eq!(j.events[1].kind, EventKind::Injected);
        assert_eq!(j.events[1].delay, us(200));
        assert_eq!(j.events[1].permille, 700);
        assert_eq!(j.events[2].kind, EventKind::DecayStep);
        assert_eq!(j.events[2].permille, 550);
    }

    #[test]
    fn take_journal_resets_but_keeps_event_mode() {
        let mut t = RunTelemetry::with_events();
        t.injected(SiteId(0), ThreadId(0), us(1), us(10), 1000);
        let first = t.take_journal();
        assert_eq!(first.counters.injected, 1);
        assert!(t.journal().events.is_empty());
        t.injected(SiteId(0), ThreadId(0), us(2), us(10), 1000);
        let second = t.take_journal();
        assert_eq!(second.counters.injected, 1);
        assert_eq!(second.events.len(), 1, "event mode survives take");
    }

    #[test]
    fn journals_round_trip_through_json() {
        let mut t = RunTelemetry::with_events();
        t.injected(SiteId(9), ThreadId(1), us(42), us(115), 1000);
        t.decay_step(SiteId(9), ThreadId(1), us(42), 850);
        let attempt = AttemptJournal {
            workload: "w".into(),
            tool: "waffle".into(),
            attempt_seed: 3,
            runs: vec![t.take_journal()],
        };
        let back = AttemptJournal::from_json(&attempt.to_json().unwrap()).unwrap();
        assert_eq!(back, attempt);
        assert_eq!(back.totals().injected, 1);
        assert_eq!(back.totals().decay_steps, 1);
    }
}
