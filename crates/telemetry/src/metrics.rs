//! Sim-time histograms and cross-run aggregation.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};
use waffle_sim::SimTime;

use crate::journal::{AttemptJournal, RunJournal, TelemetryCounters};

/// Number of power-of-two buckets: bucket 0 holds zero-length values,
/// bucket `i ≥ 1` holds values in `[2^(i-1), 2^i)` microseconds. 40
/// buckets cover every representable `SimTime` the simulator produces
/// (2^39 µs ≈ 6.4 days of virtual time).
const BUCKETS: usize = 40;

/// A fixed-bucket log₂ histogram over [`SimTime`] values (microsecond
/// resolution). Recording is allocation-free after construction; merging
/// is bucket-wise addition, so aggregation order cannot change the result.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SimTimeHistogram {
    buckets: Vec<u64>,
    count: u64,
    sum_us: u64,
    max_us: u64,
}

impl Default for SimTimeHistogram {
    fn default() -> Self {
        Self {
            buckets: vec![0; BUCKETS],
            count: 0,
            sum_us: 0,
            max_us: 0,
        }
    }
}

impl SimTimeHistogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    fn bucket_index(us: u64) -> usize {
        if us == 0 {
            0
        } else {
            ((64 - us.leading_zeros()) as usize).min(BUCKETS - 1)
        }
    }

    /// Records one value.
    pub fn record(&mut self, value: SimTime) {
        let us = value.as_us();
        self.buckets[Self::bucket_index(us)] += 1;
        self.count += 1;
        self.sum_us = self.sum_us.saturating_add(us);
        self.max_us = self.max_us.max(us);
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Sum of all recorded values, in microseconds.
    pub fn sum_us(&self) -> u64 {
        self.sum_us
    }

    /// Largest recorded value, in microseconds.
    pub fn max_us(&self) -> u64 {
        self.max_us
    }

    /// Mean recorded value in microseconds (zero when empty).
    pub fn mean_us(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum_us as f64 / self.count as f64
        }
    }

    /// Upper bound (exclusive, µs) of the bucket holding the `q`-quantile
    /// (`0.0 ≤ q ≤ 1.0`), or `None` when empty. Bucket-granular: the true
    /// quantile lies within a factor of two below the returned bound.
    pub fn quantile_upper_bound_us(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let rank = ((self.count as f64 * q).ceil() as u64).clamp(1, self.count);
        let mut seen = 0;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return Some(if i == 0 { 0 } else { 1u64 << i });
            }
        }
        None
    }

    /// Bucket-wise accumulation of another histogram.
    pub fn merge(&mut self, other: &SimTimeHistogram) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.sum_us = self.sum_us.saturating_add(other.sum_us);
        self.max_us = self.max_us.max(other.max_us);
    }

    /// Non-empty buckets as `(lower_us, upper_us_exclusive, count)` rows.
    pub fn nonzero_buckets(&self) -> impl Iterator<Item = (u64, u64, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &n)| n > 0)
            .map(|(i, &n)| {
                if i == 0 {
                    (0, 1, n)
                } else {
                    (1u64 << (i - 1), 1u64 << i, n)
                }
            })
    }
}

/// Telemetry aggregated over any number of runs (and attempts).
///
/// Merging is commutative and associative, but the experiment layer still
/// folds journals **in attempt order** so that even non-commutative
/// consumers (e.g. event concatenation, if ever added) would stay
/// deterministic under the parallel engine.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct TelemetrySummary {
    /// Detection runs aggregated.
    pub runs: u64,
    /// Summed decision counters.
    pub counters: TelemetryCounters,
    /// Merged delay-length histogram.
    pub delay_hist: SimTimeHistogram,
    /// Merged instrumentation-overhead histogram.
    pub overhead_hist: SimTimeHistogram,
}

impl TelemetrySummary {
    /// Folds one run journal into the summary.
    pub fn absorb_run(&mut self, journal: &RunJournal) {
        self.runs += 1;
        self.counters.merge(&journal.counters);
        self.delay_hist.merge(&journal.delay_hist);
        self.overhead_hist.merge(&journal.overhead_hist);
    }

    /// Folds every run of an attempt journal into the summary.
    pub fn absorb_attempt(&mut self, attempt: &AttemptJournal) {
        for run in &attempt.runs {
            self.absorb_run(run);
        }
    }

    /// Accumulates another summary.
    pub fn merge(&mut self, other: &TelemetrySummary) {
        self.runs += other.runs;
        self.counters.merge(&other.counters);
        self.delay_hist.merge(&other.delay_hist);
        self.overhead_hist.merge(&other.overhead_hist);
    }
}

/// A deterministic, name-keyed metrics registry for campaign-level
/// breakdowns (e.g. per `workload/tool` counters in `waffle stats`).
/// `BTreeMap` keys make iteration — and serialized output — stable.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct MetricsRegistry {
    counters: BTreeMap<String, u64>,
    histograms: BTreeMap<String, SimTimeHistogram>,
}

impl MetricsRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `by` to the named counter, creating it at zero.
    pub fn inc(&mut self, name: &str, by: u64) {
        *self.counters.entry(name.to_owned()).or_insert(0) += by;
    }

    /// The named counter's value (zero when absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Mutable access to the named histogram, creating it empty.
    pub fn histogram_mut(&mut self, name: &str) -> &mut SimTimeHistogram {
        self.histograms.entry(name.to_owned()).or_default()
    }

    /// The named histogram, when present.
    pub fn histogram(&self, name: &str) -> Option<&SimTimeHistogram> {
        self.histograms.get(name)
    }

    /// Iterates counters in name order.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> + '_ {
        self.counters.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// Records one duration observation (µs) under `name`: bumps the
    /// `{name}/count` counter, adds to `{name}/total_us`, and buckets the
    /// value in the `{name}` histogram. Used for phase timings such as
    /// `analysis/index_build` and `analysis/scan` (`waffle analyze --stats`).
    pub fn observe_us(&mut self, name: &str, us: u64) {
        self.inc(&format!("{name}/count"), 1);
        self.inc(&format!("{name}/total_us"), us);
        self.histogram_mut(name).record(SimTime::from_us(us));
    }

    /// Records one dimensionless observation (e.g. an ingest queue depth)
    /// under `name`: bumps `{name}/count`, adds to `{name}/total`, and
    /// buckets the raw value in the `{name}` histogram (log₂ buckets; the
    /// histogram's µs labels read as plain magnitudes here).
    pub fn observe_value(&mut self, name: &str, value: u64) {
        self.inc(&format!("{name}/count"), 1);
        self.inc(&format!("{name}/total"), value);
        self.histogram_mut(name).record(SimTime::from_us(value));
    }

    /// Folds an attempt journal in under a `workload/tool` prefix, plus
    /// the global totals.
    pub fn absorb_attempt(&mut self, attempt: &AttemptJournal) {
        let totals = attempt.totals();
        let prefix = format!("{}/{}", attempt.workload, attempt.tool);
        for (name, value) in [
            ("injected", totals.injected),
            ("skipped_probability", totals.skipped_probability),
            ("skipped_interference", totals.skipped_interference),
            ("decay_steps", totals.decay_steps),
            ("instrumented_ops", totals.instrumented_ops),
        ] {
            self.inc(&format!("{prefix}/{name}"), value);
            self.inc(&format!("total/{name}"), value);
        }
        self.inc(&format!("{prefix}/runs"), attempt.runs.len() as u64);
        self.inc("total/runs", attempt.runs.len() as u64);
        for name in [format!("{prefix}/delay"), "total/delay".to_owned()] {
            let delay_hist = self.histogram_mut(&name);
            for run in &attempt.runs {
                delay_hist.merge(&run.delay_hist);
            }
        }
    }

    /// Folds an already-aggregated per-cell summary in under a
    /// `workload/tool` prefix, plus the global totals — the resume path of
    /// a checkpointed campaign, where each cell's journals were folded
    /// into its [`TelemetrySummary`] before being persisted. Because
    /// counter and histogram merging is commutative bucket-wise addition,
    /// folding checkpointed summaries is bit-identical to folding the
    /// original run journals.
    pub fn absorb_summary(&mut self, workload: &str, tool: &str, summary: &TelemetrySummary) {
        let prefix = format!("{workload}/{tool}");
        for (name, value) in [
            ("injected", summary.counters.injected),
            ("skipped_probability", summary.counters.skipped_probability),
            ("skipped_interference", summary.counters.skipped_interference),
            ("decay_steps", summary.counters.decay_steps),
            ("instrumented_ops", summary.counters.instrumented_ops),
        ] {
            self.inc(&format!("{prefix}/{name}"), value);
            self.inc(&format!("total/{name}"), value);
        }
        self.inc(&format!("{prefix}/runs"), summary.runs);
        self.inc("total/runs", summary.runs);
        for name in [format!("{prefix}/delay"), "total/delay".to_owned()] {
            self.histogram_mut(&name).merge(&summary.delay_hist);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::journal::RunTelemetry;
    use waffle_mem::SiteId;
    use waffle_sim::time::{ms, us};
    use waffle_sim::ThreadId;

    #[test]
    fn histogram_buckets_values_by_power_of_two() {
        let mut h = SimTimeHistogram::new();
        h.record(SimTime::ZERO);
        h.record(us(1));
        h.record(us(3));
        h.record(ms(100));
        assert_eq!(h.count(), 4);
        assert_eq!(h.sum_us(), 100_004);
        assert_eq!(h.max_us(), 100_000);
        let rows: Vec<_> = h.nonzero_buckets().collect();
        assert_eq!(rows[0], (0, 1, 1), "zero bucket");
        assert!(rows.iter().any(|&(lo, hi, n)| lo == 1 && hi == 2 && n == 1));
        assert!(rows.iter().any(|&(lo, hi, n)| lo == 2 && hi == 4 && n == 1));
        assert!(
            rows.iter()
                .any(|&(lo, hi, n)| lo <= 100_000 && 100_000 < hi && n == 1),
            "100ms lands in its power-of-two bucket"
        );
    }

    #[test]
    fn histogram_merge_is_bucketwise_and_order_independent() {
        let mut a = SimTimeHistogram::new();
        a.record(us(10));
        a.record(us(500));
        let mut b = SimTimeHistogram::new();
        b.record(us(10));
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba);
        assert_eq!(ab.count(), 3);
        assert_eq!(ab.sum_us(), 520);
    }

    #[test]
    fn quantile_bound_brackets_the_median() {
        let mut h = SimTimeHistogram::new();
        for _ in 0..10 {
            h.record(us(100)); // bucket [64, 128)
        }
        h.record(ms(50));
        let p50 = h.quantile_upper_bound_us(0.5).unwrap();
        assert_eq!(p50, 128);
        assert!(h.quantile_upper_bound_us(1.0).unwrap() > 50_000);
        assert_eq!(SimTimeHistogram::new().quantile_upper_bound_us(0.5), None);
    }

    #[test]
    fn summary_absorbs_runs_and_merges() {
        let mut t = RunTelemetry::counters_only();
        t.injected(SiteId(0), ThreadId(0), us(5), us(115), 1000);
        t.decay_step(SiteId(0), ThreadId(0), us(5), 850);
        let j1 = t.take_journal();
        t.skipped_probability(SiteId(0), ThreadId(0), us(6), 850);
        let j2 = t.take_journal();
        let mut s = TelemetrySummary::default();
        s.absorb_run(&j1);
        s.absorb_run(&j2);
        assert_eq!(s.runs, 2);
        assert_eq!(s.counters.injected, 1);
        assert_eq!(s.counters.skipped_probability, 1);
        let mut merged = TelemetrySummary::default();
        merged.merge(&s);
        merged.merge(&s);
        assert_eq!(merged.runs, 4);
        assert_eq!(merged.counters.decay_steps, 2);
        assert_eq!(merged.delay_hist.count(), 2);
    }

    /// The campaign resume path: folding a checkpointed per-cell summary
    /// must equal folding the attempt journals it was built from.
    #[test]
    fn absorbing_a_folded_summary_equals_absorbing_its_journals() {
        let mut t = RunTelemetry::counters_only();
        t.injected(SiteId(0), ThreadId(0), us(5), us(115), 1000);
        t.decay_step(SiteId(0), ThreadId(0), us(5), 850);
        let j1 = t.take_journal();
        t.skipped_probability(SiteId(0), ThreadId(0), us(6), 850);
        t.injected(SiteId(1), ThreadId(1), us(9), us(230), 850);
        let j2 = t.take_journal();
        let attempt = AttemptJournal {
            workload: "w".into(),
            tool: "waffle".into(),
            attempt_seed: 1,
            runs: vec![j1.clone(), j2.clone()],
        };
        let mut from_journals = MetricsRegistry::new();
        from_journals.absorb_attempt(&attempt);
        let mut cell_summary = TelemetrySummary::default();
        cell_summary.absorb_run(&j1);
        cell_summary.absorb_run(&j2);
        let mut from_summary = MetricsRegistry::new();
        from_summary.absorb_summary("w", "waffle", &cell_summary);
        assert_eq!(from_summary, from_journals);
        assert_eq!(from_summary.counter("w/waffle/injected"), 2);
        assert_eq!(from_summary.counter("total/runs"), 2);
        assert_eq!(from_summary.histogram("total/delay").unwrap().count(), 2);
    }

    #[test]
    fn observe_us_tracks_count_total_and_histogram() {
        let mut r = MetricsRegistry::new();
        r.observe_us("analysis/index_build", 300);
        r.observe_us("analysis/index_build", 700);
        assert_eq!(r.counter("analysis/index_build/count"), 2);
        assert_eq!(r.counter("analysis/index_build/total_us"), 1_000);
        let h = r.histogram("analysis/index_build").unwrap();
        assert_eq!(h.count(), 2);
        assert_eq!(h.sum_us(), 1_000);
        assert_eq!(h.max_us(), 700);
    }

    #[test]
    fn registry_breaks_out_per_workload_counters_deterministically() {
        let mut t = RunTelemetry::counters_only();
        t.injected(SiteId(0), ThreadId(0), us(5), us(115), 1000);
        let attempt = AttemptJournal {
            workload: "w1".into(),
            tool: "waffle".into(),
            attempt_seed: 1,
            runs: vec![t.take_journal()],
        };
        let mut r = MetricsRegistry::new();
        r.absorb_attempt(&attempt);
        assert_eq!(r.counter("w1/waffle/injected"), 1);
        assert_eq!(r.counter("total/injected"), 1);
        assert_eq!(r.counter("w1/waffle/runs"), 1);
        assert_eq!(r.counter("absent/metric"), 0);
        assert_eq!(r.histogram("w1/waffle/delay").unwrap().count(), 1);
        let names: Vec<_> = r.counters().map(|(n, _)| n.to_owned()).collect();
        let mut sorted = names.clone();
        sorted.sort();
        assert_eq!(names, sorted, "iteration is name-ordered");
    }
}
