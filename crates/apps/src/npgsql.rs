//! NpgSQL: PostgreSQL-driver model.
//!
//! Carries Bug-12 (issue #3247, Fig. 4a shape embedded in connection-pool
//! churn): the prepared statement's initialization races a reader, the
//! disposal interferes, and the hot pool sites both flood WaffleBasic with
//! fixed delays (the 25× overhead of Table 5) and interfere with Waffle's
//! critical delay for the first detection runs (the 4-run entry of
//! Table 4).

use waffle_sim::RepairKind;
use waffle_sim::time::{ms, us};

use crate::churn_templates::{instances_in_churn, ChurnParams};
use crate::framework::{App, AppMeta, BugExpectation, BugSpec, TestCase};
use crate::patterns;
use crate::templates::BugSites;

const BUG12_SITES: BugSites = BugSites {
    init: "PreparedStmt.Prepare:23",
    use_: "Command.CheckPrepared:41",
    dispose: "PreparedStmt.Unprepare:31",
};

fn pool_churn() -> ChurnParams {
    ChurnParams {
        scan_objects: 10,
        rescan_objects: 2,
        rounds: 8,
        conns_per_round: 15,
        hot_gap: ms(25),
    }
}

pub(crate) fn app() -> App {
    let mut tests = vec![
        // Bug-12 (1097 ms base input): the prepared-statement check is
        // executed by the reader thread and, three times, by the
        // unprepare path right before the disposal — near-simultaneously,
        // inside heavy pool churn.
        TestCase {
            workload: instances_in_churn(
                "Npgsql.prepared_statements",
                BUG12_SITES,
                ms(3),
                ms(1),
                ms(8),
                1,
                ms(410),
                pool_churn(),
            ),
            seeded_bug: Some(12),
        },
    ];
    for w in [
        patterns::cache_churn("Npgsql.pool_churn", 7, 16, us(200), ms(450)),
        patterns::cache_churn("Npgsql.batch_commands", 7, 15, us(180), ms(460)),
        patterns::cache_churn("Npgsql.binary_import", 7, 14, us(220), ms(440)),
        patterns::producer_consumer("Npgsql.notification_stream", 4, 8, us(150), ms(400)),
        patterns::shared_dict("Npgsql.type_mapper", 3, 2, us(80), ms(30)),
        patterns::worker_pool("Npgsql.multiplexing", 8, 3, us(200), ms(420)),
    ] {
        tests.push(TestCase {
            workload: w,
            seeded_bug: None,
        });
    }
    for w in [
        patterns::cache_churn("Npgsql.replication_slots", 7, 15, us(200), ms(440)),
        patterns::cache_churn("Npgsql.copy_buffers", 6, 16, us(210), ms(430)),
        patterns::retry_loop("Npgsql.failover_retry", 5, us(250), ms(430)),
    ] {
        tests.push(TestCase {
            workload: w,
            seeded_bug: None,
        });
    }
    App {
        name: "NpgSQL",
        meta: AppMeta {
            loc_k: 51.9,
            mt_tests_paper: 283,
            stars_k: 2.4,
        },
        tests,
        bugs: vec![BugSpec {
            id: 12,
            app: "NpgSQL",
            issue: "3247",
            known: true,
            test_name: "Npgsql.prepared_statements".into(),
            summary: "prepared statement unprepared while the reader's check still \
                      dereferences it; hot pool sites interfere with the critical \
                      delay and flood WaffleBasic",
            expected_repair: Some(RepairKind::EventEdge),
            paper: BugExpectation {
                basic_runs: None,
                waffle_runs: 4,
                basic_slowdown: None,
                waffle_slowdown: 6.9,
                base_ms: 1097,
            },
        }],
    }
}
