//! Common concurrency patterns used to build background (bug-free) tests.
//!
//! Every pattern is carefully synchronized so that *no* delay schedule can
//! produce a NULL-reference exception — orderings that matter are enforced
//! by joins or events, which injected delays propagate through. They still
//! produce realistic analysis inputs: near-miss candidates (event/join
//! ordered uses and disposals), fork-ordered pairs for the parent–child
//! pruning to remove, thread-unsafe API call sites for the TSV tooling,
//! and heap-access densities ranging from light (FluentAssertions-like) to
//! heavy (NpgSQL-like).

use waffle_sim::time::{ms, us};
use waffle_sim::{SimTime, Workload, WorkloadBuilder};

/// A fork/join worker pool.
///
/// Main initializes `n_objects` objects (right before the forks — the
/// classic pattern §4.1 prunes), forks `n_workers` workers that each use
/// every object, joins, then disposes everything. The init→use pairs are
/// fork-ordered (pruned by parent–child analysis; candidates for the
/// ablation); the use→dispose pairs are join-ordered (kept as candidates,
/// never exposable).
pub fn worker_pool(
    name: &str,
    n_objects: u32,
    n_workers: u32,
    work_per_item: SimTime,
    padding: SimTime,
) -> Workload {
    let mut b = WorkloadBuilder::new(name);
    let objs = b.objects("item", n_objects);
    let started = b.event("started");
    let objs_w = objs.clone();
    let worker = b.script("worker", move |s| {
        // Worker start-up latency: the pooled objects are first touched
        // ~40 ms after their allocation — inside the near-miss window, so
        // the alloc→use pairs are exactly the fork-ordered candidates the
        // parent–child analysis prunes (Table 7 row 1 pays α·40 ms per
        // allocation site without it).
        s.wait(started).pad(ms(40));
        for (i, o) in objs_w.iter().enumerate() {
            s.compute(work_per_item)
                .use_(*o, &format!("Worker.process:{i}"), us(20));
        }
    });
    let objs_m = objs.clone();
    let main = b.script("main", move |s| {
        s.pad(padding);
        // Each allocation site executes twice per run — allocate, then
        // reconfigure — matching the §3.3 observation that object
        // initializations have a median of 2 dynamic instances.
        for (i, o) in objs_m.iter().enumerate() {
            s.init(*o, &format!("Main.alloc:{i}"), us(30));
        }
        for (i, o) in objs_m.iter().enumerate() {
            s.init(*o, &format!("Main.alloc:{i}"), us(30));
        }
        s.fork_n(worker, n_workers).signal(started).join_children();
        for (i, o) in objs_m.iter().enumerate() {
            s.dispose(*o, &format!("Main.release:{i}"), us(20));
        }
        s.pad(padding);
    });
    b.main(main);
    b.build()
}

/// A producer/consumer in batches.
///
/// The producer initializes each batch of messages then signals the batch
/// event; the consumer waits for the signal before using the messages.
/// Use→dispose pairs are event-ordered (safe candidates).
pub fn producer_consumer(
    name: &str,
    n_batches: u32,
    batch: u32,
    item_work: SimTime,
    padding: SimTime,
) -> Workload {
    let mut b = WorkloadBuilder::new(name);
    let msgs = b.objects("msg", n_batches * batch);
    let ready: Vec<_> = (0..n_batches)
        .map(|i| b.event(&format!("batch{i}")))
        .collect();
    let done: Vec<_> = (0..n_batches)
        .map(|i| b.event(&format!("done{i}")))
        .collect();
    let msgs_c = msgs.clone();
    let ready_c = ready.clone();
    let done_c = done.clone();
    let consumer = b.script("consumer", move |s| {
        for bi in 0..n_batches {
            s.wait(ready_c[bi as usize]);
            for j in 0..batch {
                let m = msgs_c[(bi * batch + j) as usize];
                s.compute(item_work)
                    .use_(m, &format!("Consumer.handle:{j}"), us(15));
            }
            s.signal(done_c[bi as usize]);
        }
    });
    let msgs_p = msgs.clone();
    let main = b.script("main", move |s| {
        s.pad(padding).fork(consumer);
        for bi in 0..n_batches {
            for j in 0..batch {
                let m = msgs_p[(bi * batch + j) as usize];
                s.init(m, &format!("Producer.make:{j}"), us(25));
            }
            s.signal(ready[bi as usize]);
            s.wait(done[bi as usize]);
            for j in 0..batch {
                let m = msgs_p[(bi * batch + j) as usize];
                s.dispose(m, &format!("Producer.recycle:{j}"), us(10));
            }
        }
        s.join_children();
    });
    b.main(main);
    b.build()
}

/// Connection-cache churn: repeated init/use/dispose cycles with heavy
/// heap traffic (the NpgSQL/MQTT.Net density profile). Disposal of each
/// round's connections is gated on the round-done event.
pub fn cache_churn(
    name: &str,
    rounds: u32,
    conns_per_round: u32,
    round_work: SimTime,
    padding: SimTime,
) -> Workload {
    let mut b = WorkloadBuilder::new(name);
    let conns = b.objects("conn", rounds * conns_per_round);
    let round_ready: Vec<_> = (0..rounds).map(|i| b.event(&format!("r{i}"))).collect();
    let round_done: Vec<_> = (0..rounds).map(|i| b.event(&format!("d{i}"))).collect();
    let conns_w = conns.clone();
    let ready_w = round_ready.clone();
    let done_w = round_done.clone();
    let worker = b.script("worker", move |s| {
        for r in 0..rounds {
            s.wait(ready_w[r as usize]);
            for c in 0..conns_per_round {
                let conn = conns_w[(r * conns_per_round + c) as usize];
                s.compute(round_work)
                    .use_(conn, &format!("Worker.query:{c}"), us(30))
                    .use_(conn, &format!("Worker.read:{c}"), us(20));
            }
            s.signal(done_w[r as usize]);
        }
    });
    let conns_m = conns.clone();
    let main = b.script("main", move |s| {
        s.pad(padding).fork(worker);
        for r in 0..rounds {
            for c in 0..conns_per_round {
                let conn = conns_m[(r * conns_per_round + c) as usize];
                s.init(conn, &format!("Pool.open:{c}"), us(40));
            }
            s.signal(round_ready[r as usize]);
            s.wait(round_done[r as usize]);
            for c in 0..conns_per_round {
                let conn = conns_m[(r * conns_per_round + c) as usize];
                s.dispose(conn, &format!("Pool.close:{c}"), us(25));
            }
        }
        s.join_children();
    });
    b.main(main);
    b.build()
}

/// Concurrent thread-unsafe dictionary traffic (no MemOrder candidates;
/// the TSV instrumentation class for Table 2). Calls are spaced 90 ms
/// apart — inside the 100 ms near-miss window, so TSVD identifies the
/// pairs, but far enough that a 100 ms delay overlaps a neighbouring
/// delay only marginally (the low TSVD overlap ratios of §3.3).
pub fn shared_dict(
    name: &str,
    rounds: u32,
    n_threads: u32,
    call_window: SimTime,
    padding: SimTime,
) -> Workload {
    let mut b = WorkloadBuilder::new(name);
    let dict = b.object("dict");
    let started = b.event("started");
    // Time-slot schedule: all threads re-anchor on the start event, thread
    // t owns slot `t·slot` within each `period`.
    let slot = ms(98);
    let period = slot * (n_threads as u64 + 1);
    let workers: Vec<_> = (0..n_threads)
        .map(|k| {
            b.script(format!("worker{k}"), move |s| {
                s.wait(started).pad(slot * k as u64);
                s.repeat(rounds, |s, r| {
                    s.unsafe_call(dict, &format!("Worker.Add:{r}"), call_window)
                        .pad(period - call_window);
                });
            })
        })
        .collect();
    let main = b.script("main", move |s| {
        s.pad(padding).init(dict, "Main.ctor:1", us(30));
        for w in &workers {
            s.fork(*w);
        }
        s.signal(started).pad(slot * n_threads as u64);
        s.repeat(rounds, |s, r| {
            s.unsafe_call(dict, &format!("Main.Get:{r}"), call_window)
                .pad(period - call_window);
        });
        s.join_children().dispose(dict, "Main.drop:9", us(20));
    });
    b.main(main);
    b.build()
}

/// A staged pipeline: stage k's thread initializes items for stage k+1 and
/// signals; each handoff is event-ordered.
pub fn pipeline(name: &str, stages: u32, items: u32, stage_work: SimTime) -> Workload {
    let mut b = WorkloadBuilder::new(name);
    let cells: Vec<Vec<_>> = (0..stages)
        .map(|s| b.objects(&format!("stage{s}"), items))
        .collect();
    let handoff: Vec<_> = (0..stages).map(|i| b.event(&format!("h{i}"))).collect();
    let mut stage_scripts = Vec::new();
    for st in 0..stages as usize {
        let mine = cells[st].clone();
        let next = if st + 1 < stages as usize {
            Some(cells[st + 1].clone())
        } else {
            None
        };
        let wait_ev = handoff[st];
        let sig_ev = handoff.get(st + 1).copied();
        let script = b.script(format!("stage{st}"), move |s| {
            s.wait(wait_ev);
            for (i, o) in mine.iter().enumerate() {
                s.compute(stage_work)
                    .use_(*o, &format!("Stage{st}.work:{i}"), us(20));
            }
            if let Some(next_cells) = next {
                for (i, o) in next_cells.iter().enumerate() {
                    s.init(*o, &format!("Stage{st}.emit:{i}"), us(20));
                }
            }
            if let Some(ev) = sig_ev {
                s.signal(ev);
            }
        });
        stage_scripts.push(script);
    }
    let first_cells = cells[0].clone();
    let ev0 = handoff[0];
    let main = b.script("main", move |s| {
        for (i, o) in first_cells.iter().enumerate() {
            s.init(*o, &format!("Main.seed:{i}"), us(20));
        }
        for sc in &stage_scripts {
            s.fork(*sc);
        }
        s.signal(ev0).join_children();
    });
    b.main(main);
    b.build()
}


/// Barrier-phased computation: `n_workers` workers process shared state in
/// lockstep phases, each phase gated by a pair of events ("arrive" /
/// "release") driven by a coordinator — the classic barrier shape. Objects
/// live for exactly one phase; hand-offs are fully event-ordered.
pub fn barrier_phases(
    name: &str,
    phases: u32,
    n_workers: u32,
    phase_work: SimTime,
    padding: SimTime,
) -> Workload {
    let mut b = WorkloadBuilder::new(name);
    let state = b.objects("phase_state", phases);
    let release: Vec<_> = (0..phases).map(|i| b.event(&format!("rel{i}"))).collect();
    let arrived: Vec<_> = (0..phases * n_workers)
        .map(|i| b.event(&format!("arr{i}")))
        .collect();
    // One arrive event per (phase, worker): the coordinator collects a
    // phase's state only after *every* worker arrived — a true barrier.
    let workers: Vec<_> = (0..n_workers)
        .map(|k| {
            let state = state.clone();
            let release = release.clone();
            let arrived = arrived.clone();
            b.script(format!("worker{k}"), move |s| {
                for p in 0..state.len() {
                    s.wait(release[p])
                        .compute(phase_work)
                        .use_(state[p], &format!("Worker.phase:{p}"), us(25))
                        .signal(arrived[p * n_workers as usize + k as usize]);
                }
            })
        })
        .collect();
    let state_m = state.clone();
    let main = b.script("coordinator", move |s| {
        s.pad(padding);
        for w in &workers {
            s.fork(*w);
        }
        for p in 0..state_m.len() {
            s.init(state_m[p], &format!("Coord.prepare:{p}"), us(40))
                .signal(release[p]);
            for k in 0..n_workers as usize {
                s.wait(arrived[p * n_workers as usize + k]);
            }
            s.compute(phase_work)
                .dispose(state_m[p], &format!("Coord.collect:{p}"), us(25));
        }
        s.join_children().pad(padding);
    });
    b.main(main);
    b.build()
}

/// A retry loop: the client opens a connection, uses it, tears it down and
/// *re-initializes the same object* on the next attempt — exercising the
/// heap model's Disposed → Live resurrection on one static site per
/// operation, `attempts` dynamic instances each.
pub fn retry_loop(name: &str, attempts: u32, attempt_work: SimTime, padding: SimTime) -> Workload {
    let mut b = WorkloadBuilder::new(name);
    let conn = b.object("conn");
    let try_done: Vec<_> = (0..attempts).map(|i| b.event(&format!("try{i}"))).collect();
    let acked: Vec<_> = (0..attempts).map(|i| b.event(&format!("ack{i}"))).collect();
    let try_done_w = try_done.clone();
    let acked_w = acked.clone();
    let worker = b.script("prober", move |s| {
        for (ev, ack) in try_done_w.iter().zip(&acked_w) {
            s.wait(*ev)
                .compute(attempt_work)
                .use_(conn, "Prober.ping", us(30))
                .signal(*ack);
        }
    });
    let main = b.script("client", move |s| {
        s.pad(padding).fork(worker);
        for (ev, ack) in try_done.iter().zip(&acked) {
            s.init(conn, "Client.connect", us(50))
                .signal(*ev)
                // The attempt only ends once the probe acknowledged: the
                // drop is ordered after the ping.
                .wait(*ack)
                .compute(attempt_work)
                .dispose(conn, "Client.drop", us(30));
        }
        s.join_children().pad(padding);
    });
    b.main(main);
    b.build()
}

/// A timer wheel: a ticker thread signals periodic tick events; handler
/// threads run their callbacks against per-tick context objects prepared
/// by main — the event-handler shape behind ApplicationInsights-style
/// bugs, here fully ordered.
pub fn timer_wheel(
    name: &str,
    ticks: u32,
    period: SimTime,
    handler_work: SimTime,
    padding: SimTime,
) -> Workload {
    let mut b = WorkloadBuilder::new(name);
    let ctxs = b.objects("tick_ctx", ticks);
    let tick_ev: Vec<_> = (0..ticks).map(|i| b.event(&format!("tick{i}"))).collect();
    let handled: Vec<_> = (0..ticks).map(|i| b.event(&format!("hd{i}"))).collect();
    let tick_ev_t = tick_ev.clone();
    let ticker = b.script("ticker", move |s| {
        for ev in &tick_ev_t {
            s.compute(period).signal(*ev);
        }
    });
    let ctxs_h = ctxs.clone();
    let tick_ev_h = tick_ev.clone();
    let handled_h = handled.clone();
    let handler = b.script("handler", move |s| {
        for i in 0..ctxs_h.len() {
            s.wait(tick_ev_h[i])
                .compute(handler_work)
                .use_(ctxs_h[i], "Handler.on_tick", us(30))
                .signal(handled_h[i]);
        }
    });
    let ctxs_m = ctxs.clone();
    let main = b.script("main", move |s| {
        s.pad(padding);
        for (i, c) in ctxs_m.iter().enumerate() {
            let _ = i;
            s.init(*c, "Main.prepare_ctx", us(40));
        }
        s.fork(ticker).fork(handler);
        for ev in &handled {
            s.wait(*ev);
        }
        s.join_children();
        for c in ctxs_m.iter() {
            s.dispose(*c, "Main.drop_ctx", us(25));
        }
        s.pad(padding);
    });
    b.main(main);
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use waffle_sim::{NullMonitor, SimConfig, Simulator};

    fn clean_under_any_seed(w: &Workload) {
        for seed in 0..5 {
            let cfg = SimConfig {
                seed,
                timing_noise_pct: 10,
                ..SimConfig::default()
            };
            let r = Simulator::run(w, cfg, &mut NullMonitor);
            assert!(!r.manifested(), "{} manifested delay-free", w.name);
            assert_eq!(r.stranded_threads, 0, "{} stranded threads", w.name);
        }
    }

    #[test]
    fn worker_pool_is_clean() {
        clean_under_any_seed(&worker_pool("p.pool", 6, 3, us(100), ms(1)));
    }

    #[test]
    fn producer_consumer_is_clean() {
        clean_under_any_seed(&producer_consumer("p.pc", 4, 5, us(50), ms(1)));
    }

    #[test]
    fn cache_churn_is_clean() {
        clean_under_any_seed(&cache_churn("p.cc", 5, 4, us(80), ms(1)));
    }

    #[test]
    fn shared_dict_is_clean_and_tsv_only() {
        let w = shared_dict("p.dict", 6, 2, us(50), ms(1));
        clean_under_any_seed(&w);
        assert!(w.tsv_sites() > 0);
        let r = Simulator::run(
            &w,
            SimConfig::with_seed(0).deterministic(),
            &mut NullMonitor,
        );
        assert!(r.tsv_violations.is_empty(), "no overlap without delays");
    }

    #[test]
    fn pipeline_is_clean() {
        clean_under_any_seed(&pipeline("p.pipe", 3, 4, us(60)));
    }

    #[test]
    fn barrier_phases_is_clean() {
        clean_under_any_seed(&barrier_phases("p.barrier", 3, 2, us(80), ms(1)));
    }

    #[test]
    fn retry_loop_is_clean_and_resurrects() {
        let w = retry_loop("p.retry", 4, us(120), ms(1));
        clean_under_any_seed(&w);
        let r = Simulator::run(
            &w,
            SimConfig::with_seed(0).deterministic(),
            &mut NullMonitor,
        );
        // Four inits on the SAME object through one static site.
        assert_eq!(r.heap.inits, 4);
        assert_eq!(r.heap.disposes, 4);
        let site = w.sites.lookup("Client.connect").unwrap();
        assert_eq!(r.site_dyn_counts[&site], 4);
    }

    #[test]
    fn timer_wheel_is_clean() {
        clean_under_any_seed(&timer_wheel("p.timer", 4, us(500), us(100), ms(1)));
    }

    #[test]
    fn new_patterns_survive_full_waffle_detection() {
        // Stronger than fixed-delay injection: run the actual detector
        // (plan-guided sole delays are exactly what breaks weak ordering).
        use waffle_core::{Detector, DetectorConfig, Tool};
        let det = Detector::with_config(
            Tool::waffle(),
            DetectorConfig {
                max_detection_runs: 4,
                ..DetectorConfig::default()
            },
        );
        for w in [
            barrier_phases("d.barrier", 3, 2, us(80), ms(1)),
            retry_loop("d.retry", 3, us(120), ms(1)),
            timer_wheel("d.timer", 3, us(500), us(100), ms(1)),
        ] {
            for attempt in 1..=3 {
                let o = det.detect(&w, attempt);
                assert!(
                    o.exposed.is_none(),
                    "{} exposed {:?} (attempt {attempt})",
                    w.name,
                    o.exposed.map(|r| r.site)
                );
            }
        }
    }

    #[test]
    fn patterns_survive_aggressive_delay_injection() {
        // Even delaying *every* access by 2ms, the synchronization keeps
        // the patterns free of NULL-reference exceptions.
        struct DelayAll;
        impl waffle_sim::Monitor for DelayAll {
            fn on_access_pre(
                &mut self,
                _ctx: &waffle_sim::AccessCtx<'_>,
            ) -> waffle_sim::PreAction {
                waffle_sim::PreAction::Delay(ms(2))
            }
        }
        for w in [
            worker_pool("q.pool", 4, 2, us(100), ms(1)),
            producer_consumer("q.pc", 3, 3, us(50), ms(1)),
            cache_churn("q.cc", 3, 3, us(80), ms(1)),
            pipeline("q.pipe", 3, 3, us(60)),
            barrier_phases("q.barrier", 3, 2, us(80), ms(1)),
            retry_loop("q.retry", 3, us(120), ms(1)),
            timer_wheel("q.timer", 3, us(500), us(100), ms(1)),
        ] {
            let r = Simulator::run(
                &w,
                SimConfig::with_seed(1).deterministic(),
                &mut DelayAll,
            );
            assert!(!r.manifested(), "{} manifested under delays", w.name);
        }
    }
}
