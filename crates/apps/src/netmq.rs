//! NetMQ: message-queue model.
//!
//! Carries Bug-11 (issue #814, the paper's Fig. 4b — `ChkDisposed` is
//! executed by both the worker and, right before the dispose, by the
//! cleanup thread; the shared site makes WaffleBasic's delays cancel most
//! runs) and Bug-15 (issue #975 — the message queue disposed while workers
//! still dequeue; the racing instances are near-simultaneous and the
//! cleanup path re-checks several times, so WaffleBasic virtually never
//! gets a lucky sole delay).

use waffle_sim::RepairKind;
use waffle_sim::time::{ms, us};

use crate::framework::{App, AppMeta, BugExpectation, BugSpec, TestCase};
use crate::patterns;
use crate::templates::{self, BugSites};

const BUG11_SITES: BugSites = BugSites {
    init: "NetMQRuntime.ctor:2",
    use_: "ChkDisposed:11",
    dispose: "Cleanup.DisposePoller:8",
};

const BUG15_SITES: BugSites = BugSites {
    init: "MsgQueue.ctor:5",
    use_: "Worker.Dequeue:48",
    dispose: "MsgQueue.Dispose:61",
};

pub(crate) fn app() -> App {
    let mut tests = vec![
        // Bug-11: Fig. 4b — after the phase event, the worker checks at
        // 2 ms and the cleanup checks at 4 ms then disposes 8 ms later
        // (18.5 s base input). The worker's instance deterministically
        // precedes the cleanup's.
        TestCase {
            workload: templates::interfering_instances(
                "NetMQ.runtime_cleanup",
                BUG11_SITES,
                ms(2),
                ms(4),
                ms(8),
                1,
                ms(9_180),
                3,
            ),
            seeded_bug: Some(11),
        },
        // Bug-15: near-simultaneous check instances (both 3 ms after the
        // phase event, ordered by timing noise) and a triple re-check on
        // the cleanup path (593 ms base input).
        TestCase {
            workload: templates::interfering_instances(
                "NetMQ.queue_dispose",
                BUG15_SITES,
                ms(3),
                ms(3),
                ms(8),
                3,
                ms(235),
                3,
            ),
            seeded_bug: Some(15),
        },
    ];
    for w in [
        patterns::producer_consumer("NetMQ.push_pull", 3, 5, us(150), ms(760)),
        patterns::worker_pool("NetMQ.router_dealer", 5, 2, us(200), ms(740)),
        patterns::pipeline("NetMQ.proxy_chain", 3, 5, us(150)),
        patterns::shared_dict("NetMQ.socket_options", 3, 2, us(70), ms(30)),
        patterns::cache_churn("NetMQ.frame_buffers", 4, 4, us(200), ms(700)),
        patterns::producer_consumer("NetMQ.pub_sub", 3, 6, us(120), ms(720)),
    ] {
        tests.push(TestCase {
            workload: w,
            seeded_bug: None,
        });
    }
    for w in [
        patterns::timer_wheel("NetMQ.heartbeat_timer", 5, us(900), us(150), ms(730)),
        patterns::retry_loop("NetMQ.reconnect_loop", 5, us(220), ms(720)),
        patterns::barrier_phases("NetMQ.poller_rounds", 3, 2, us(130), ms(710)),
        crate::extensions::task_request_pipeline("NetMQ.async_sends", 6, 2),
    ] {
        tests.push(TestCase {
            workload: w,
            seeded_bug: None,
        });
    }
    App {
        name: "NetMQ",
        meta: AppMeta {
            loc_k: 20.7,
            mt_tests_paper: 101,
            stars_k: 2.3,
        },
        tests,
        bugs: vec![
            BugSpec {
                id: 11,
                app: "NetMQ",
                issue: "814",
                known: true,
                test_name: "NetMQ.runtime_cleanup".into(),
                summary: "ChkDisposed executed by the cleanup thread right before \
                          the dispose cancels the delay on the worker's instance \
                          (Fig. 4b)",
                expected_repair: Some(RepairKind::EventEdge),
                paper: BugExpectation {
                    basic_runs: Some(5),
                    waffle_runs: 2,
                    base_ms: 18_503,
                    basic_slowdown: Some(5.1),
                    waffle_slowdown: 2.2,
                },
            },
            BugSpec {
                id: 15,
                app: "NetMQ",
                issue: "975",
                known: false,
                test_name: "NetMQ.queue_dispose".into(),
                summary: "message queue disposed while a worker dequeues; triple \
                          re-check on the cleanup path cancels WaffleBasic's delays",
                expected_repair: Some(RepairKind::EventEdge),
                paper: BugExpectation {
                    basic_runs: None,
                    waffle_runs: 3,
                    base_ms: 593,
                    basic_slowdown: None,
                    waffle_slowdown: 12.2,
                },
            },
        ],
    }
}
