//! Bug templates embedded in heavy connection churn.
//!
//! The NpgSQL and MQTT.Net bugs of Table 4 live in allocation-heavy
//! applications: the bug's delay location competes with many *hot*
//! candidate locations. For WaffleBasic, the hot locations mean a flood of
//! fixed 100 ms delays (the NpgSQL 25× overhead and the MQTT.Net timeouts
//! of Table 5). For Waffle, the hot locations interfere with the bug's
//! delay location (they execute on the partner location's thread within
//! the Fig. 5 window), so the first detection run(s) skip the critical
//! delay until the hot sites' probabilities decay — which is why these
//! bugs take 3–4 runs (§6.3).

use waffle_sim::time::us;
use waffle_sim::{SimTime, Workload, WorkloadBuilder};

use crate::templates::BugSites;

/// Knobs for the churn backbone.
#[derive(Debug, Clone, Copy)]
pub struct ChurnParams {
    /// Scan cycles the cleanup thread performs before the bug window.
    pub scan_objects: u32,
    /// Re-scan cycles the cleanup thread performs *inside* the bug window
    /// (the interference source for Waffle's `I`: their delays are ongoing
    /// when the racing check executes, and their decay across detection
    /// runs is what spreads the exposure over 3–4 runs).
    pub rescan_objects: u32,
    /// Churn rounds driven by the main thread.
    pub rounds: u32,
    /// Connections per churn round.
    pub conns_per_round: u32,
    /// Gap between a connection's last use and its disposal (the hot
    /// near-miss gap; also the hot sites' planned delay length ÷ α).
    pub hot_gap: SimTime,
}

/// Fig. 4b interference embedded in churn (the MQTT.Net / NetMQ-heavy
/// shape).
///
/// Threads:
/// - `main`: churn producer — per round, initializes connections, signals
///   the worker, waits, disposes them `hot_gap` after the worker's last
///   use (hot near-miss pairs, event-ordered, never exposable);
/// - `worker`: uses every connection of the round; at `worker_at` it also
///   performs the racing check on the poller (`sites.use_`);
/// - `cleanup`: scans `scan_objects` sessions (hot candidate instances on
///   the *cleanup* thread — the interference source for the plan's `I`),
///   performs the same check (`sites.use_`, the Fig. 4b second instance),
///   then disposes the poller.
#[allow(clippy::too_many_arguments)]
pub fn instances_in_churn(
    name: &str,
    sites: BugSites,
    worker_at: SimTime,
    cleanup_at: SimTime,
    check_to_dispose: SimTime,
    checks: u32,
    pad: SimTime,
    churn: ChurnParams,
) -> Workload {
    let mut b = WorkloadBuilder::new(name);
    let poller = b.object("m_poller");
    let sessions = b.objects("session", churn.scan_objects);
    let late_sessions = b.objects("late_session", churn.rescan_objects);
    let conns = b.objects("conn", churn.rounds * churn.conns_per_round);
    let started = b.event("started");
    let scanned = b.event("scanned");
    let phase = b.event("phase");
    let round_ready: Vec<_> = (0..churn.rounds)
        .map(|i| b.event(&format!("r{i}")))
        .collect();
    let round_done: Vec<_> = (0..churn.rounds)
        .map(|i| b.event(&format!("d{i}")))
        .collect();

    let conns_w = conns.clone();
    let ready_w = round_ready.clone();
    let done_w = round_done.clone();
    let rounds = churn.rounds;
    let cpr = churn.conns_per_round;
    let worker = b.script("worker", move |s| {
        s.wait(started);
        for r in 0..rounds {
            s.wait(ready_w[r as usize]);
            for c in 0..cpr {
                let conn = conns_w[(r * cpr + c) as usize];
                s.compute(us(120))
                    .use_(conn, &format!("Conn.execute:{c}"), us(30))
                    .use_(conn, &format!("Conn.read:{c}"), us(20));
            }
            s.signal(done_w[r as usize]);
        }
        // The racing check: re-anchored on the phase event.
        s.wait(phase)
            .compute(worker_at)
            .use_(poller, sites.use_, us(30));
    });

    let sessions_c = sessions.clone();
    let late_c = late_sessions.clone();
    let cleanup = b.script("cleanup", move |s| {
        s.wait(started).pad(SimTime::from_ms(110));
        // Hot candidate instances on the cleanup thread: session scans,
        // disposed by main shortly after `scanned` (event-ordered).
        for o in &sessions_c {
            s.compute(us(150)).use_(*o, "Cleanup.scan", us(25));
        }
        s.signal(scanned).wait(phase).compute(cleanup_at);
        // Re-scans inside the bug window: the first one's planned delay
        // covers the racing check's moment (interference); the later ones
        // run past it. All of them shift the dispose when delayed, which
        // is what cancels WaffleBasic's fixed delays deterministically.
        for o in &late_c {
            s.use_(*o, "Cleanup.rescan", us(25)).compute(SimTime::from_ms(4));
        }
        for _ in 0..checks.max(1) {
            s.use_(poller, sites.use_, us(30)).compute(us(200));
        }
        s.compute(check_to_dispose)
            .dispose(poller, sites.dispose, us(40));
    });

    let conns_m = conns.clone();
    let sessions_m = sessions.clone();
    let late_m = late_sessions.clone();
    let hot_gap = churn.hot_gap;
    let main = b.script("main", move |s| {
        s.pad(pad).init(poller, sites.init, us(60));
        for (i, o) in sessions_m.iter().enumerate() {
            s.init(*o, &format!("Session.open:{i}"), us(30));
        }
        for (i, o) in late_m.iter().enumerate() {
            s.init(*o, &format!("LateSession.open:{i}"), us(30));
        }
        s.fork(worker).fork(cleanup).signal(started);
        for r in 0..rounds {
            for c in 0..cpr {
                let conn = conns_m[(r * cpr + c) as usize];
                s.init(conn, &format!("Pool.rent:{c}"), us(35));
            }
            s.signal(round_ready[r as usize]);
            s.wait(round_done[r as usize]);
            s.compute(hot_gap);
            for c in 0..cpr {
                let conn = conns_m[(r * cpr + c) as usize];
                s.dispose(conn, &format!("Pool.return:{c}"), us(25));
            }
        }
        s.wait(scanned).compute(hot_gap);
        for (i, o) in sessions_m.iter().enumerate() {
            s.dispose(*o, &format!("Session.close:{i}"), us(25));
        }
        s.signal(phase).join_children();
        // Late sessions are recycled after the bug window completes, a
        // near-miss away from the cleanup's re-scans.
        for (i, o) in late_m.iter().enumerate() {
            s.dispose(*o, &format!("LateSession.close:{i}"), us(25));
        }
        s.pad(pad);
    });
    b.main(main);
    b.build()
}

/// Fig. 4a interference embedded in churn (the NpgSQL shape): the handler
/// thread performs hot churn work before the racing use, so the plan's
/// interference set couples the bug's init site with the hot sites.
#[allow(clippy::too_many_arguments)]
pub fn bugs_in_churn(
    name: &str,
    sites: BugSites,
    pre: SimTime,
    g1: SimTime,
    g2: SimTime,
    pad: SimTime,
    churn: ChurnParams,
) -> Workload {
    let mut b = WorkloadBuilder::new(name);
    let obj = b.object("prepared_stmt");
    let scans = b.objects("cached_stmt", churn.scan_objects);
    let conns = b.objects("conn", churn.rounds * churn.conns_per_round);
    let started = b.event("started");
    let scanned = b.event("scanned");
    let round_ready: Vec<_> = (0..churn.rounds)
        .map(|i| b.event(&format!("r{i}")))
        .collect();
    let round_done: Vec<_> = (0..churn.rounds)
        .map(|i| b.event(&format!("d{i}")))
        .collect();

    let scans_h = scans.clone();
    let handler = b.script("handler", move |s| {
        s.wait(started);
        // Hot candidate instances on the handler thread, executed in the
        // window before the racing use.
        for o in &scans_h {
            s.compute(us(150)).use_(*o, "Cache.touch", us(25));
        }
        s.signal(scanned)
            .compute(pre + g1)
            .use_(obj, sites.use_, us(40));
    });

    let conns_w = conns.clone();
    let ready_w = round_ready.clone();
    let done_w = round_done.clone();
    let rounds = churn.rounds;
    let cpr = churn.conns_per_round;
    let worker = b.script("worker", move |s| {
        s.wait(started);
        for r in 0..rounds {
            s.wait(ready_w[r as usize]);
            for c in 0..cpr {
                let conn = conns_w[(r * cpr + c) as usize];
                s.compute(us(120))
                    .use_(conn, &format!("Conn.execute:{c}"), us(30))
                    .use_(conn, &format!("Conn.read:{c}"), us(20));
            }
            s.signal(done_w[r as usize]);
        }
    });

    let conns_m = conns.clone();
    let scans_m = scans.clone();
    let hot_gap = churn.hot_gap;
    let main = b.script("main", move |s| {
        s.compute(pad);
        for (i, o) in scans_m.iter().enumerate() {
            s.init(*o, &format!("Cache.fill:{i}"), us(30));
        }
        s.fork(handler).fork(worker).signal(started);
        for r in 0..rounds {
            for c in 0..cpr {
                let conn = conns_m[(r * cpr + c) as usize];
                s.init(conn, &format!("Pool.rent:{c}"), us(35));
            }
            s.signal(round_ready[r as usize]);
            s.wait(round_done[r as usize]);
            s.compute(hot_gap);
            for c in 0..cpr {
                let conn = conns_m[(r * cpr + c) as usize];
                s.dispose(conn, &format!("Pool.return:{c}"), us(25));
            }
        }
        // The Fig. 4a object: init after the handler exists, dispose g2
        // after the racing use.
        s.wait(scanned)
            .compute(pre)
            .init(obj, sites.init, us(60))
            .compute(g1 + g2)
            .dispose(obj, sites.dispose, us(40))
            .compute(hot_gap);
        for (i, o) in scans_m.iter().enumerate() {
            s.dispose(*o, &format!("Cache.evict:{i}"), us(25));
        }
        s.join_children().compute(pad);
    });
    b.main(main);
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use waffle_sim::time::ms;
    use waffle_sim::{NullMonitor, SimConfig, Simulator};

    const SITES: BugSites = BugSites {
        init: "C.init:1",
        use_: "C.use:2",
        dispose: "C.dispose:3",
    };

    fn churn() -> ChurnParams {
        ChurnParams {
            scan_objects: 6,
            rescan_objects: 3,
            rounds: 4,
            conns_per_round: 5,
            hot_gap: ms(2),
        }
    }

    #[test]
    fn churn_templates_are_clean_without_delays() {
        for seed in 0..6 {
            let cfg = SimConfig {
                seed,
                timing_noise_pct: 5,
                ..SimConfig::default()
            };
            let w = instances_in_churn("c.inst", SITES, ms(3), ms(1), ms(8), 1, ms(20), churn());
            let r = Simulator::run(&w, cfg.clone(), &mut NullMonitor);
            assert!(!r.manifested(), "instances_in_churn manifested");
            assert_eq!(r.stranded_threads, 0);
            let w = bugs_in_churn("c.bugs", SITES, ms(8), ms(15), ms(20), ms(20), churn());
            let r = Simulator::run(&w, cfg, &mut NullMonitor);
            assert!(!r.manifested(), "bugs_in_churn manifested");
            assert_eq!(r.stranded_threads, 0);
        }
    }

    #[test]
    fn churn_produces_hot_candidate_sites() {
        // The hot sites (Conn.execute/Pool.return pairs etc.) must be
        // within the near-miss window so they become candidates.
        use waffle_analysis::{analyze, AnalyzerConfig};
        use waffle_trace::TraceRecorder;
        let w = instances_in_churn("c.hot", SITES, ms(3), ms(1), ms(8), 1, ms(20), churn());
        let mut rec = TraceRecorder::with_overhead(&w, SimTime::ZERO);
        let _ = Simulator::run(&w, SimConfig::with_seed(0).deterministic(), &mut rec);
        let plan = analyze(&rec.into_trace(), &AnalyzerConfig::default());
        assert!(
            plan.delay_len.len() >= 3,
            "expected hot candidates, got {:?}",
            plan.candidates
        );
        // The racing check interferes with the cleanup thread's scans.
        let check = w.sites.lookup(SITES.use_).unwrap();
        let rescan = w.sites.lookup("Cleanup.rescan").unwrap();
        assert!(
            plan.interference.interferes(check, rescan),
            "interference {:?}",
            plan.interference
        );
    }
}
