//! MQTT.Net: MQTT broker/client model.
//!
//! Carries Bug-16 (issue #1187) and Bug-17 (issue #1188): both are
//! Fig. 4b-shaped races embedded in heavy packet churn. The racing check
//! sits *after* the churn phase, so WaffleBasic's fixed-delay flood pushes
//! the run past its timeout before the racy window is even reached — the
//! "most tests timed out" behaviour of Tables 5 and 6.

use waffle_sim::RepairKind;
use waffle_sim::time::{ms, us};

use crate::churn_templates::{instances_in_churn, ChurnParams};
use crate::framework::{App, AppMeta, BugExpectation, BugSpec, TestCase};
use crate::patterns;
use crate::templates::BugSites;

const BUG16_SITES: BugSites = BugSites {
    init: "MqttClient.ctor:4",
    use_: "PacketDispatcher.Check:19",
    dispose: "MqttClient.Disconnect:52",
};

const BUG17_SITES: BugSites = BugSites {
    init: "ManagedClient.Start:8",
    use_: "PublishQueue.Peek:44",
    dispose: "ManagedClient.Stop:71",
};

fn heavy_churn() -> ChurnParams {
    ChurnParams {
        scan_objects: 8,
        rescan_objects: 3,
        rounds: 10,
        conns_per_round: 25,
        hot_gap: ms(4),
    }
}

pub(crate) fn app() -> App {
    let mut tests = vec![
        // Bug-16 (1207 ms base input).
        TestCase {
            workload: instances_in_churn(
                "Mqtt.packet_dispatcher",
                BUG16_SITES,
                ms(3),
                ms(1),
                ms(8),
                1,
                ms(535),
                heavy_churn(),
            ),
            seeded_bug: Some(16),
        },
        // Bug-17 (13.7 s base input).
        TestCase {
            workload: instances_in_churn(
                "Mqtt.managed_client_stop",
                BUG17_SITES,
                ms(3),
                ms(1),
                ms(8),
                1,
                ms(6_790),
                heavy_churn(),
            ),
            seeded_bug: Some(17),
        },
    ];
    for w in [
        patterns::cache_churn("Mqtt.session_churn", 8, 60, us(100), ms(500)),
        patterns::cache_churn("Mqtt.retained_messages", 8, 55, us(100), ms(520)),
        patterns::producer_consumer("Mqtt.publish_stream", 8, 30, us(120), ms(400)),
        patterns::cache_churn("Mqtt.topic_subscriptions", 8, 58, us(100), ms(480)),
        patterns::shared_dict("Mqtt.client_table", 3, 2, us(80), ms(30)),
        patterns::cache_churn("Mqtt.inflight_window", 8, 50, us(100), ms(450)),
    ] {
        tests.push(TestCase {
            workload: w,
            seeded_bug: None,
        });
    }
    for w in [
        patterns::cache_churn("Mqtt.pending_acks", 8, 55, us(100), ms(470)),
        patterns::cache_churn("Mqtt.will_messages", 8, 52, us(110), ms(490)),
        patterns::cache_churn("Mqtt.qos2_flows", 7, 58, us(100), ms(460)),
    ] {
        tests.push(TestCase {
            workload: w,
            seeded_bug: None,
        });
    }
    App {
        name: "MQTT.Net",
        meta: AppMeta {
            loc_k: 27.1,
            mt_tests_paper: 126,
            stars_k: 2.2,
        },
        tests,
        bugs: vec![
            BugSpec {
                id: 16,
                app: "MQTT.Net",
                issue: "1187",
                known: false,
                test_name: "Mqtt.packet_dispatcher".into(),
                summary: "dispatcher check races the disconnect inside heavy packet \
                          churn; the fixed-delay flood times WaffleBasic out",
                expected_repair: Some(RepairKind::EventEdge),
                paper: BugExpectation {
                    basic_runs: None,
                    waffle_runs: 4,
                    base_ms: 1207,
                    basic_slowdown: None,
                    waffle_slowdown: 5.4,
                },
            },
            BugSpec {
                id: 17,
                app: "MQTT.Net",
                issue: "1188",
                known: false,
                test_name: "Mqtt.managed_client_stop".into(),
                summary: "publish queue peeked while the managed client stops; \
                          heavy churn, WaffleBasic times out",
                expected_repair: Some(RepairKind::EventEdge),
                paper: BugExpectation {
                    basic_runs: None,
                    waffle_runs: 3,
                    base_ms: 13_722,
                    basic_slowdown: None,
                    waffle_slowdown: 6.2,
                },
            },
        ],
    }
}
