//! The benchmark suite: eleven synthetic multi-threaded applications
//! shaped after the paper's subjects (Table 3), carrying the 18 seeded
//! MemOrder bugs of Table 4.
//!
//! Each application is a library of *workloads* ("multi-threaded test
//! cases"): most are bug-free background tests built from common
//! concurrency patterns ([`patterns`]), and a few are faithful models of
//! the reported issues — with the location/timing properties the paper
//! documents (interfering bugs as in Fig. 4a, interfering dynamic
//! instances as in Fig. 4b, dense heap traffic, 1–100 ms gaps).
//!
//! The suite is *scaled*: test counts are 10–30 per app instead of up to
//! 283, and base execution times follow Table 4's per-input times. The
//! scaling is recorded in `EXPERIMENTS.md`.

pub mod churn_templates;
pub mod extensions;
pub mod framework;
pub mod patterns;
pub mod templates;
pub mod weak;

mod app_insights;
mod fluent_assertions;
mod kubernetes;
mod litedb;
mod mqtt;
mod netmq;
mod npgsql;
mod nsubstitute;
mod nswag;
mod signalr;
mod ssh_net;

pub use framework::{App, AppMeta, BugExpectation, BugSpec, TestCase};
pub use weak::{weak_scenario, weak_scenarios, WeakScenario};

/// All eleven applications, in Table 3 order.
pub fn all_apps() -> Vec<App> {
    vec![
        app_insights::app(),
        fluent_assertions::app(),
        kubernetes::app(),
        litedb::app(),
        mqtt::app(),
        netmq::app(),
        npgsql::app(),
        nsubstitute::app(),
        nswag::app(),
        signalr::app(),
        ssh_net::app(),
    ]
}

/// All eighteen seeded bugs, in Table 4 order (Bug-1 … Bug-18).
pub fn all_bugs() -> Vec<BugSpec> {
    let mut bugs: Vec<BugSpec> = all_apps().into_iter().flat_map(|a| a.bugs).collect();
    bugs.sort_by_key(|b| b.id);
    bugs
}

/// Looks up one bug by its Table 4 number (1–18).
pub fn bug(id: u32) -> Option<BugSpec> {
    all_bugs().into_iter().find(|b| b.id == id)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_has_eleven_apps_and_eighteen_bugs() {
        assert_eq!(all_apps().len(), 11);
        let bugs = all_bugs();
        assert_eq!(bugs.len(), 18);
        let ids: Vec<u32> = bugs.iter().map(|b| b.id).collect();
        assert_eq!(ids, (1..=18).collect::<Vec<_>>());
    }

    #[test]
    fn every_app_has_tests_and_metadata() {
        for app in all_apps() {
            assert!(!app.tests.is_empty(), "{} has no tests", app.name);
            assert!(app.meta.loc_k > 0.0);
            assert!(app.meta.mt_tests_paper > 0);
        }
    }

    #[test]
    fn bug_workloads_are_registered_as_tests() {
        for b in all_bugs() {
            let app = all_apps()
                .into_iter()
                .find(|a| a.name == b.app)
                .expect("bug references an app");
            assert!(
                app.tests.iter().any(|t| t.workload.name == b.test_name),
                "bug {} test {} not in {}",
                b.id,
                b.test_name,
                b.app
            );
        }
    }

    #[test]
    fn twelve_known_and_six_unknown_bugs() {
        let bugs = all_bugs();
        assert_eq!(bugs.iter().filter(|b| b.known).count(), 12);
        assert_eq!(bugs.iter().filter(|b| !b.known).count(), 6);
    }
}
