//! Parameterized builders for the seeded MemOrder bugs.
//!
//! Each template reproduces one of the bug *shapes* the paper documents:
//!
//! - [`single_uaf`] / [`single_ubi`]: one dynamic instance per run — the
//!   shape that forces WaffleBasic to spend one run identifying and one
//!   run injecting, while Waffle needs preparation + one detection run;
//! - [`recurring_uaf`]: the pattern recurs within a run, so WaffleBasic
//!   can identify at iteration k and inject at k+1 (its 1-run wins,
//!   Bugs 3/6/9);
//! - [`interfering_bugs`]: Fig. 4a — a use-before-init and a use-after-free
//!   candidate on the same object whose delays cancel each other
//!   (WaffleBasic misses deterministically; Waffle's interference set
//!   breaks the tie);
//! - [`interfering_instances`]: Fig. 4b — the delay location is executed by
//!   the disposing thread right before the dispose, cancelling the delay
//!   on the racing thread (WaffleBasic needs several lucky runs).
//!
//! All times are virtual; `pad` stretches the input to the Table 4 base
//! execution times.

use waffle_mem::ObjectId;
use waffle_sim::time::us;
use waffle_sim::{EventId, ScriptBuilder, SimTime, Workload, WorkloadBuilder};

/// Site-name bundle so each app can label the template with its own
/// source-like locations.
#[derive(Debug, Clone, Copy)]
pub struct BugSites {
    /// Initialization site (object allocation / ctor).
    pub init: &'static str,
    /// Use site (the racing access).
    pub use_: &'static str,
    /// Disposal site.
    pub dispose: &'static str,
}

/// Background traffic: `n` objects initialized in `main` before the racing
/// threads exist, used by a dedicated background thread, and disposed by
/// `main` after the join. The allocations happen more than δ before the
/// first background use, so they never become near-miss candidates; the
/// use→dispose pairs do become (join-ordered, unexposable) candidates,
/// which is what gives WaffleBasic its fixed-delay flood on candidate-rich
/// inputs.
struct Background {
    objs: Vec<ObjectId>,
    started: EventId,
    script: waffle_sim::ScriptId,
}

fn background(b: &mut WorkloadBuilder, prefix: &str, n: u32) -> Background {
    let objs = b.objects(&format!("{prefix}-bg"), n);
    let started = b.event(&format!("{prefix}-bg-started"));
    let objs_w = objs.clone();
    let script = b.script(format!("{prefix}-bg-worker"), move |s| {
        // Stay out of the near-miss window of the allocations.
        s.wait(started).pad(SimTime::from_ms(105));
        for (i, o) in objs_w.iter().enumerate() {
            s.compute(us(50))
                .use_(*o, &format!("Background.use:{i}"), us(20));
        }
    });
    Background {
        objs,
        started,
        script,
    }
}

impl Background {
    /// Allocations, fork, and start signal (call from `main` before the
    /// racing threads are set up).
    fn start(&self, s: &mut ScriptBuilder<'_>) {
        for (i, o) in self.objs.iter().enumerate() {
            s.init(*o, &format!("Background.alloc:{i}"), us(25));
        }
        s.fork(self.script).signal(self.started);
    }

    /// Disposals (call from `main` after `join_children`).
    fn finish(&self, s: &mut ScriptBuilder<'_>) {
        for (i, o) in self.objs.iter().enumerate() {
            s.dispose(*o, &format!("Background.free:{i}"), us(15));
        }
    }
}

/// Single-instance use-after-free.
///
/// The worker uses the object once; the main thread disposes it `gap`
/// later with no ordering between them. Delay-free runs are clean; a delay
/// longer than `gap` at the use flips the order.
pub fn single_uaf(
    name: &str,
    sites: BugSites,
    pre: SimTime,
    gap: SimTime,
    pad: SimTime,
    bg_objects: u32,
) -> Workload {
    let mut b = WorkloadBuilder::new(name);
    let obj = b.object("victim");
    let started = b.event("started");
    let bg = background(&mut b, "u", bg_objects);
    let worker = b.script("worker", move |s| {
        s.wait(started).pad(pre).use_(obj, sites.use_, us(40));
    });
    let main = b.script("main", move |s| {
        s.pad(pad).init(obj, sites.init, us(60));
        bg.start(s);
        s.fork(worker)
            .signal(started)
            .pad(pre)
            .compute(gap)
            .dispose(obj, sites.dispose, us(40))
            .join_children();
        bg.finish(s);
        s.pad(pad);
    });
    b.main(main);
    b.build()
}

/// Single-instance use-before-initialization.
///
/// The object is initialized *after* the racing thread is already running
/// (so the pair survives parent–child pruning); the racing use happens
/// `gap` after the init. A delay longer than `gap` at the init exposes it.
pub fn single_ubi(
    name: &str,
    sites: BugSites,
    pre: SimTime,
    gap: SimTime,
    pad: SimTime,
    bg_objects: u32,
) -> Workload {
    let mut b = WorkloadBuilder::new(name);
    let obj = b.object("victim");
    let started = b.event("started");
    let bg = background(&mut b, "i", bg_objects);
    let handler = b.script("handler", move |s| {
        s.wait(started)
            .pad(pre)
            .compute(gap)
            .use_(obj, sites.use_, us(40));
    });
    let main = b.script("main", move |s| {
        s.pad(pad);
        bg.start(s);
        s.fork(handler)
            .signal(started)
            .pad(pre)
            .init(obj, sites.init, us(60))
            .compute(gap * 4)
            .use_(obj, "Main.localuse:1", us(20))
            .join_children()
            // The teardown disposal happens well past the near-miss
            // window of the racing use, so it adds no use-after-free
            // candidate that could cancel the use-before-init delay.
            .pad(SimTime::from_ms(120))
            .dispose(obj, sites.dispose, us(30));
        bg.finish(s);
        s.pad(pad);
    });
    b.main(main);
    b.build()
}

/// Recurring use-after-free: `rounds` iterations on fresh objects through
/// the *same* static sites, re-anchored per round by an event so drift
/// cannot accumulate. WaffleBasic identifies at round 1 and exposes at a
/// later round of the same run.
pub fn recurring_uaf(
    name: &str,
    sites: BugSites,
    rounds: u32,
    gap: SimTime,
    round_len: SimTime,
    pad: SimTime,
) -> Workload {
    let mut b = WorkloadBuilder::new(name);
    let objs = b.objects("victim", rounds);
    let round_ev: Vec<_> = (0..rounds).map(|i| b.event(&format!("r{i}"))).collect();
    let objs_w = objs.clone();
    let round_w = round_ev.clone();
    let worker = b.script("worker", move |s| {
        for r in 0..rounds as usize {
            s.wait(round_w[r])
                .compute(us(200))
                .use_(objs_w[r], sites.use_, us(40))
                .compute(round_len);
        }
    });
    let objs_m = objs.clone();
    let main = b.script("main", move |s| {
        s.pad(pad).fork(worker);
        for r in 0..rounds as usize {
            s.init(objs_m[r], sites.init, us(50))
                .signal(round_ev[r])
                .compute(us(200) + gap)
                .dispose(objs_m[r], sites.dispose, us(30))
                .compute(round_len);
        }
        s.join_children().pad(pad);
    });
    b.main(main);
    b.build()
}

/// Fig. 4a: interfering bugs. One object with a use-before-init candidate
/// (init at `pre`, use at `pre + g1`) and a use-after-free candidate
/// (dispose at `pre + g1 + g2`) across two threads. WaffleBasic delays the
/// init and the use in parallel — cancelling both manifestations — every
/// run; Waffle's interference set suppresses one delay and exposes the
/// use-before-init in its first detection run.
pub fn interfering_bugs(
    name: &str,
    sites: BugSites,
    pre: SimTime,
    g1: SimTime,
    g2: SimTime,
    pad: SimTime,
    bg_objects: u32,
) -> Workload {
    let mut b = WorkloadBuilder::new(name);
    let obj = b.object("lstnr");
    let started = b.event("started");
    let used = b.event("used");
    let bg = background(&mut b, "f", bg_objects);
    let handler = b.script("handler", move |s| {
        s.wait(started)
            .pad(pre)
            .compute(g1)
            .use_(obj, sites.use_, us(40))
            .signal(used);
    });
    let main = b.script("main", move |s| {
        s.pad(pad);
        bg.start(s);
        s.fork(handler)
            .signal(started)
            .pad(pre)
            .init(obj, sites.init, us(60))
            // The disposal handshakes on the handler having run (real
            // lifecycles rarely free an object their own handler has not
            // touched yet), so a delay at the use pushes the disposal
            // along with it — only a *sole* delay at the initialization
            // can expose the use-before-init, which is precisely the
            // schedule Waffle's interference set arranges.
            .wait(used)
            .compute(g2)
            .dispose(obj, sites.dispose, us(40))
            .join_children();
        bg.finish(s);
        s.pad(pad);
    });
    b.main(main);
    b.build()
}

/// Fig. 4b: interfering dynamic instances. The check site (`sites.use_`)
/// is executed both by the worker (the racing access, `worker_at` after
/// the start signal) and `checks` times by the cleanup thread right before
/// the dispose (`cleanup_at`, then `check_to_dispose` later the dispose).
/// Delaying the worker's instance alone exposes the use-after-free; a
/// parallel delay at any of the cleanup's instances shifts the dispose and
/// cancels it — more `checks` make WaffleBasic's lucky sole-fire
/// exponentially rarer.
#[allow(clippy::too_many_arguments)]
pub fn interfering_instances(
    name: &str,
    sites: BugSites,
    worker_at: SimTime,
    cleanup_at: SimTime,
    check_to_dispose: SimTime,
    checks: u32,
    pad: SimTime,
    bg_objects: u32,
) -> Workload {
    let mut b = WorkloadBuilder::new(name);
    let poller = b.object("m_poller");
    let phase = b.event("phase");
    let bg = background(&mut b, "x", bg_objects);
    // As in the paper's Fig. 4b listing: `if (ChkDisposed()) throw;` — the
    // check dereferences the poller (the instrumented access where the
    // NULL-reference exception strikes) and the branch throws cleanly when
    // the flag reads disposed.
    let worker = b.script("worker", move |s| {
        s.wait(phase)
            .compute(worker_at)
            .use_(poller, sites.use_, us(30))
            .skip_if(poller, waffle_sim::Cond::IsLive, 1)
            .throw("TryExecTaskInline.throw:15");
    });
    let cleanup = b.script("cleanup", move |s| {
        s.wait(phase).compute(cleanup_at);
        for _ in 0..checks.max(1) {
            s.use_(poller, sites.use_, us(30))
                .skip_if(poller, waffle_sim::Cond::IsLive, 1)
                .throw("Cleanup.throw:6")
                .compute(us(200));
        }
        s.compute(check_to_dispose)
            .dispose(poller, sites.dispose, us(40));
    });
    let main = b.script("main", move |s| {
        s.pad(pad).init(poller, sites.init, us(60));
        bg.start(s);
        // The racing window is re-anchored on the phase event, signalled
        // past the near-miss window of the poller's initialization, so
        // relative timing noise within the window comes only from the
        // small worker/cleanup offsets.
        s.fork(worker)
            .fork(cleanup)
            .pad(SimTime::from_ms(110))
            .signal(phase)
            .join_children();
        bg.finish(s);
        s.pad(pad);
    });
    b.main(main);
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use waffle_sim::time::ms;
    use waffle_sim::{NullMonitor, SimConfig, Simulator};

    const SITES: BugSites = BugSites {
        init: "T.init:1",
        use_: "T.use:2",
        dispose: "T.dispose:3",
    };

    fn clean(w: &Workload) {
        for seed in 0..8 {
            let cfg = SimConfig {
                seed,
                timing_noise_pct: 5,
                ..SimConfig::default()
            };
            let r = Simulator::run(w, cfg, &mut NullMonitor);
            assert!(!r.manifested(), "{} manifested delay-free", w.name);
        }
    }

    #[test]
    fn templates_are_clean_without_delays() {
        clean(&single_uaf("t.uaf", SITES, ms(10), ms(30), ms(50), 4));
        clean(&single_ubi("t.ubi", SITES, ms(10), ms(20), ms(50), 4));
        clean(&recurring_uaf("t.rec", SITES, 5, ms(5), ms(10), ms(20)));
        clean(&interfering_bugs(
            "t.fig4a",
            SITES,
            ms(10),
            ms(20),
            ms(25),
            ms(30),
            4,
        ));
        clean(&interfering_instances(
            "t.fig4b",
            SITES,
            ms(8),
            ms(12),
            ms(2),
            1,
            ms(30),
            4,
        ));
    }

    #[test]
    fn single_uaf_flips_under_a_long_delay_at_the_use() {
        let w = single_uaf("t.uaf2", SITES, ms(10), ms(30), ms(5), 0);
        struct DelayUse;
        impl waffle_sim::Monitor for DelayUse {
            fn on_access_pre(&mut self, ctx: &waffle_sim::AccessCtx<'_>) -> waffle_sim::PreAction {
                if ctx.kind == waffle_mem::AccessKind::Use && ctx.dyn_index == 0 {
                    waffle_sim::PreAction::Delay(ms(40))
                } else {
                    waffle_sim::PreAction::Proceed
                }
            }
        }
        let r = Simulator::run(&w, SimConfig::with_seed(0).deterministic(), &mut DelayUse);
        assert!(r.manifested());
        assert_eq!(
            r.exceptions[0].error.kind,
            waffle_mem::NullRefKind::UseAfterFree
        );
    }

    #[test]
    fn interfering_bugs_cancel_under_parallel_delays() {
        // Delaying both the init and the use by the same fixed amount (what
        // WaffleBasic does) preserves the relative order: no manifestation.
        let w = interfering_bugs("t.fig4a2", SITES, ms(10), ms(20), ms(25), ms(5), 0);
        struct DelayBoth;
        impl waffle_sim::Monitor for DelayBoth {
            fn on_access_pre(&mut self, ctx: &waffle_sim::AccessCtx<'_>) -> waffle_sim::PreAction {
                match ctx.kind {
                    waffle_mem::AccessKind::Init | waffle_mem::AccessKind::Use => {
                        waffle_sim::PreAction::Delay(ms(100))
                    }
                    _ => waffle_sim::PreAction::Proceed,
                }
            }
        }
        let r = Simulator::run(&w, SimConfig::with_seed(0).deterministic(), &mut DelayBoth);
        assert!(!r.manifested(), "parallel equal delays must cancel");
        // Delaying only the init exposes the use-before-init.
        struct DelayInit;
        impl waffle_sim::Monitor for DelayInit {
            fn on_access_pre(&mut self, ctx: &waffle_sim::AccessCtx<'_>) -> waffle_sim::PreAction {
                if ctx.kind == waffle_mem::AccessKind::Init && ctx.dyn_index == 0 {
                    waffle_sim::PreAction::Delay(ms(100))
                } else {
                    waffle_sim::PreAction::Proceed
                }
            }
        }
        let r = Simulator::run(&w, SimConfig::with_seed(0).deterministic(), &mut DelayInit);
        assert!(r.manifested());
        assert_eq!(
            r.exceptions[0].error.kind,
            waffle_mem::NullRefKind::UseBeforeInit
        );
    }
}
