//! SignalR: real-time messaging model.
//!
//! Carries Bug-13 (unreported; no longer surfacing in the latest builds —
//! the hub connection's OnConnected initialization races the disconnect
//! path, with an interfering use-after-free candidate, Fig. 4a shape).

use waffle_sim::RepairKind;
use waffle_sim::time::{ms, us};

use crate::framework::{App, AppMeta, BugExpectation, BugSpec, TestCase};
use crate::patterns;
use crate::templates::{self, BugSites};

const BUG13_SITES: BugSites = BugSites {
    init: "HubConnection.OnConnected:22",
    use_: "Hub.InvokeClient:57",
    dispose: "HubConnection.OnDisconnected:34",
};

pub(crate) fn app() -> App {
    let mut tests = vec![
        // Bug-13: interfering candidates on the hub connection (952 ms).
        TestCase {
            workload: templates::interfering_bugs(
                "SignalR.hub_connection",
                BUG13_SITES,
                ms(10),
                ms(10),
                ms(12),
                ms(425),
                4,
            ),
            seeded_bug: Some(13),
        },
    ];
    for w in [
        patterns::producer_consumer("SignalR.message_fanout", 2, 4, us(120), ms(420)),
        patterns::worker_pool("SignalR.group_broadcast", 4, 2, us(150), ms(410)),
        patterns::pipeline("SignalR.transport_chain", 3, 5, us(100)),
        patterns::shared_dict("SignalR.connection_registry", 3, 2, us(70), ms(30)),
        patterns::cache_churn("SignalR.backplane_buffers", 3, 3, us(150), ms(400)),
    ] {
        tests.push(TestCase {
            workload: w,
            seeded_bug: None,
        });
    }
    for w in [
        patterns::timer_wheel("SignalR.keepalive_timer", 5, us(900), us(140), ms(410)),
        patterns::retry_loop("SignalR.reconnect_retry", 5, us(200), ms(410)),
        patterns::barrier_phases("SignalR.broadcast_waves", 3, 3, us(130), ms(400)),
        crate::extensions::task_request_pipeline("SignalR.invoke_tasks", 8, 3),
    ] {
        tests.push(TestCase {
            workload: w,
            seeded_bug: None,
        });
    }
    App {
        name: "SignalR",
        meta: AppMeta {
            loc_k: 51.8,
            mt_tests_paper: 52,
            stars_k: 8.5,
        },
        tests,
        bugs: vec![BugSpec {
            id: 13,
            app: "SignalR",
            issue: "n/a",
            known: false,
            test_name: "SignalR.hub_connection".into(),
            summary: "OnConnected initialization races a client invoke, with the \
                      disconnect path's use-after-free candidate interfering",
            expected_repair: Some(RepairKind::EventEdge),
            paper: BugExpectation {
                basic_runs: None,
                waffle_runs: 2,
                base_ms: 952,
                basic_slowdown: None,
                waffle_slowdown: 1.3,
            },
        }],
    }
}
