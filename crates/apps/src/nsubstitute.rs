//! NSubstitute: mocking-library model.
//!
//! Carries Bug-3 (issue #205 — the call router is swapped per configured
//! call and raced by a dispatching thread; recurs every configuration) and
//! Bug-4 (issue #573 — a substitute's call-spec store read before the
//! builder finished initializing it; a 2 ms gap, the tightest in the
//! suite).

use waffle_sim::RepairKind;
use waffle_sim::time::{ms, us};

use crate::framework::{App, AppMeta, BugExpectation, BugSpec, TestCase};
use crate::patterns;
use crate::templates::{self, BugSites};

const BUG3_SITES: BugSites = BugSites {
    init: "CallRouter.Configure:18",
    use_: "CallRouter.Route:42",
    dispose: "CallRouter.Clear:25",
};

const BUG4_SITES: BugSites = BugSites {
    init: "SubstituteBuilder.Build:11",
    use_: "CallSpec.Match:36",
    dispose: "Substitute.Reset:58",
};

pub(crate) fn app() -> App {
    let mut tests = vec![
        // Bug-3: recurring router swap race (437 ms base input).
        TestCase {
            workload: templates::recurring_uaf(
                "NSubstitute.call_router",
                BUG3_SITES,
                6,
                ms(5),
                ms(8),
                ms(180),
            ),
            seeded_bug: Some(3),
        },
        // Bug-4: 2 ms use-before-init with a dense set of benign candidate
        // sites around it (316 ms base input) — the flood is what makes
        // WaffleBasic 9× slow here.
        TestCase {
            workload: templates::single_ubi(
                "NSubstitute.callspec_store",
                BUG4_SITES,
                ms(8),
                ms(2),
                ms(45),
                12,
            ),
            seeded_bug: Some(4),
        },
    ];
    for w in [
        patterns::worker_pool("NSubstitute.received_calls", 4, 2, us(100), ms(140)),
        patterns::pipeline("NSubstitute.arg_matchers", 3, 4, us(90)),
        patterns::shared_dict("NSubstitute.proxy_cache", 3, 2, us(60), ms(30)),
        patterns::producer_consumer("NSubstitute.raise_events", 2, 3, us(80), ms(135)),
    ] {
        tests.push(TestCase {
            workload: w,
            seeded_bug: None,
        });
    }
    for w in [
        patterns::retry_loop("NSubstitute.configure_retry", 4, us(130), ms(135)),
        patterns::timer_wheel("NSubstitute.auto_values", 4, us(700), us(110), ms(130)),
        patterns::barrier_phases("NSubstitute.parallel_mocks", 3, 2, us(90), ms(130)),
    ] {
        tests.push(TestCase {
            workload: w,
            seeded_bug: None,
        });
    }
    App {
        name: "NSubstitute",
        meta: AppMeta {
            loc_k: 17.9,
            mt_tests_paper: 13,
            stars_k: 1.7,
        },
        tests,
        bugs: vec![
            BugSpec {
                id: 3,
                app: "NSubstitute",
                issue: "205",
                known: true,
                test_name: "NSubstitute.call_router".into(),
                summary: "call router cleared while a concurrent dispatch routes \
                          through it; recurs per configured call",
                expected_repair: None,
                paper: BugExpectation {
                    basic_runs: Some(1),
                    waffle_runs: 2,
                    base_ms: 437,
                    basic_slowdown: Some(3.3),
                    waffle_slowdown: 5.1,
                },
            },
            BugSpec {
                id: 4,
                app: "NSubstitute",
                issue: "573",
                known: true,
                test_name: "NSubstitute.callspec_store".into(),
                summary: "call-spec store matched 2 ms after the builder initializes \
                          it, with many benign candidates inflating the fixed-delay \
                          flood",
                expected_repair: Some(RepairKind::EventEdge),
                paper: BugExpectation {
                    basic_runs: Some(2),
                    waffle_runs: 2,
                    base_ms: 316,
                    basic_slowdown: Some(9.0),
                    waffle_slowdown: 4.4,
                },
            },
        ],
    }
}
