//! Curated weak-memory scenarios (ROADMAP item 3(a)).
//!
//! Each scenario is a small, fixed-timing workload whose seeded bug lives
//! *in the store buffers*: under sequential consistency every schedule is
//! clean (the signal/poll protocol orders the racing accesses), but under
//! the scenario's memory model a store lingering in a buffer lets another
//! thread read a stale reference. The fenced twins restore the ordering
//! with an explicit drain point at the publication and must stay clean
//! under every model — they are the experiment's negative controls.
//!
//! These are deliberately *not* part of [`crate::all_apps`]: the Table 3/4
//! suite is the paper's SC benchmark and its counts are pinned by tests.
//! Scenarios resolve by name through [`weak_scenarios`]/[`weak_scenario`]
//! and the CLI's `--memory-model` paths.

use waffle_mem::NullRefKind;
use waffle_sim::{Cond, MemoryModel, RepairKind, SimTime, Workload, WorkloadBuilder};

/// A curated weak-memory workload plus its ground truth.
#[derive(Debug, Clone)]
pub struct WeakScenario {
    /// Workload name (`weak.*`), resolvable from the CLI.
    pub name: &'static str,
    /// Weakest model the seeded bug needs (`Sc` never exposes it; the
    /// fenced controls are clean under every model).
    pub model: MemoryModel,
    /// Expected manifestation class, `None` for the fenced controls.
    pub expected: Option<NullRefKind>,
    /// The repair fix synthesis certifies for the seeded bug (`None` for
    /// the fenced controls, which expose nothing to repair). All three
    /// planted reorderings are fixed by the cheapest production — the
    /// fence the fenced twin already carries; pinned by
    /// `tests/repair_differential.rs` against actual synthesis.
    pub expected_repair: Option<RepairKind>,
    /// One-line description of the reordering at fault.
    pub summary: &'static str,
    /// The workload itself.
    pub workload: Workload,
}

fn us(v: u64) -> SimTime {
    SimTime::from_us(v)
}

/// Reader polls this long past the publication before touching the racy
/// object: 100× the 50 µs drain latency (never stale naturally), well
/// under the analyzer's δ = 100 ms (always a delay-plan candidate).
const POLL_OFF: u64 = 5_000;
/// The publisher stays busy this long after publishing, so its next
/// forced drain point (the join) lands after the reader's access.
const BUSY: u64 = 12_000;

/// TSO handoff: main initializes the object, then signals the consumer.
/// The signal is not a drain point — the init can still be sitting in
/// main's store buffer when the woken consumer reads, and a delay
/// injected at the init stretches that window past the consumer's poll.
fn tso_handoff(fenced: bool) -> Workload {
    let name = if fenced {
        "weak.tso_handoff_fenced"
    } else {
        "weak.tso_handoff"
    };
    let mut b = WorkloadBuilder::new(name);
    let conn = b.object("conn");
    let ready = b.event("ready");
    let consumer = b.script("consumer", move |s| {
        s.wait(ready)
            .compute(us(POLL_OFF))
            .use_(conn, "Consumer.Run:12", us(40));
    });
    let m = b.script("main", move |s| {
        s.pad(us(300)).fork(consumer).init(conn, "Server.Start:4", us(60));
        if fenced {
            s.fence();
        }
        s.signal(ready).compute(us(BUSY)).join_children();
        s.dispose(conn, "Server.Stop:9", us(30));
    });
    b.main(m);
    b.build()
}

/// TSO recycle: dispose and re-init of the same slot are both buffered;
/// FIFO drains the dispose first, so a stretched re-init leaves the
/// *disposed* value visible to the reader — a use-after-free with no
/// use-after-free in program order.
fn tso_recycle() -> Workload {
    let mut b = WorkloadBuilder::new("weak.tso_recycle");
    let slot = b.object("slot");
    let ready = b.event("ready");
    let reader = b.script("reader", move |s| {
        s.wait(ready)
            .compute(us(POLL_OFF))
            .use_(slot, "Pool.Borrow:21", us(40));
    });
    let m = b.script("main", move |s| {
        s.pad(us(300))
            .init(slot, "Pool.Seed:3", us(30))
            .fork(reader)
            .dispose(slot, "Pool.Evict:15", us(30))
            .init(slot, "Pool.Refill:16", us(60))
            .signal(ready)
            .compute(us(BUSY))
            .join_children();
        s.dispose(slot, "Pool.Drain:28", us(30));
    });
    b.main(m);
    b.build()
}

/// PSO data/flag publication: the flag store may drain before the data
/// store (per-object FIFO only), so the guarded reader sees the flag set
/// while the data reference is still null. TSO's total store order — and
/// the fenced twin under any model — protects this shape.
fn pso_flag(fenced: bool) -> Workload {
    let name = if fenced {
        "weak.pso_flag_fenced"
    } else {
        "weak.pso_flag"
    };
    let mut b = WorkloadBuilder::new(name);
    let data = b.object("data");
    let flag = b.object("flag");
    let reader = b.script("reader", move |s| {
        s.compute(us(POLL_OFF))
            .skip_if(flag, Cond::IsNull, 1)
            .use_(data, "Cache.Lookup:31", us(40));
    });
    let m = b.script("main", move |s| {
        s.pad(us(300)).fork(reader).init(data, "Cache.Fill:7", us(60));
        if fenced {
            s.fence();
        }
        s.init(flag, "Cache.Publish:8", us(20))
            .compute(us(BUSY))
            .join_children();
        s.dispose(data, "Cache.Clear:40", us(30))
            .dispose(flag, "Cache.Retire:41", us(20));
    });
    b.main(m);
    b.build()
}

/// The five curated scenarios: three seeded reordering bugs plus the two
/// fenced negative controls.
pub fn weak_scenarios() -> Vec<WeakScenario> {
    vec![
        WeakScenario {
            name: "weak.tso_handoff",
            model: MemoryModel::Tso,
            expected: Some(NullRefKind::UseBeforeInit),
            expected_repair: Some(RepairKind::Fence),
            summary: "init buffered past the ready signal; consumer reads null",
            workload: tso_handoff(false),
        },
        WeakScenario {
            name: "weak.tso_handoff_fenced",
            model: MemoryModel::Tso,
            expected: None,
            expected_repair: None,
            summary: "handoff with a fence before the signal (control)",
            workload: tso_handoff(true),
        },
        WeakScenario {
            name: "weak.tso_recycle",
            model: MemoryModel::Tso,
            expected: Some(NullRefKind::UseAfterFree),
            expected_repair: Some(RepairKind::Fence),
            summary: "dispose drains first, re-init stretched; reader sees disposed slot",
            workload: tso_recycle(),
        },
        WeakScenario {
            name: "weak.pso_flag",
            model: MemoryModel::Pso,
            expected: Some(NullRefKind::UseBeforeInit),
            expected_repair: Some(RepairKind::Fence),
            summary: "flag outruns data to memory; guarded read sees null data",
            workload: pso_flag(false),
        },
        WeakScenario {
            name: "weak.pso_flag_fenced",
            model: MemoryModel::Pso,
            expected: None,
            expected_repair: None,
            summary: "data/flag publication with a fence between (control)",
            workload: pso_flag(true),
        },
    ]
}

/// Looks up one scenario by workload name.
pub fn weak_scenario(name: &str) -> Option<WeakScenario> {
    weak_scenarios().into_iter().find(|s| s.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenarios_validate_and_names_are_unique() {
        let scenarios = weak_scenarios();
        assert_eq!(scenarios.len(), 5);
        let planted = scenarios.iter().filter(|s| s.expected.is_some()).count();
        assert_eq!(planted, 3, "three seeded reordering bugs");
        let mut names: Vec<_> = scenarios.iter().map(|s| s.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 5);
        for s in &scenarios {
            assert_eq!(s.workload.name, s.name);
            s.workload
                .validate()
                .unwrap_or_else(|e| panic!("{}: {e}", s.name));
            assert!(s.model.is_weak());
        }
    }

    #[test]
    fn lookup_by_name_works() {
        assert!(weak_scenario("weak.pso_flag").is_some());
        assert!(weak_scenario("weak.nonesuch").is_none());
    }
}
