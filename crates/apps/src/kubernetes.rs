//! Kubernetes.Net: API-client model.
//!
//! Carries Bug-9 (issue #360 — the watch-reconnect loop disposes the
//! response stream while the callback still reads it; the loop recurs) and
//! Bug-18 (unreported — a single-shot race between an informer's cache use
//! and the client teardown).

use waffle_sim::RepairKind;
use waffle_sim::time::{ms, us};

use crate::framework::{App, AppMeta, BugExpectation, BugSpec, TestCase};
use crate::patterns;
use crate::templates::{self, BugSites};

const BUG9_SITES: BugSites = BugSites {
    init: "Watcher.Reconnect:33",
    use_: "Watcher.OnEvent:71",
    dispose: "Watcher.DisposeStream:45",
};

const BUG18_SITES: BugSites = BugSites {
    init: "Informer.ctor:9",
    use_: "Informer.GetCached:27",
    dispose: "Client.Teardown:88",
};

pub(crate) fn app() -> App {
    let mut tests = vec![
        // Bug-9: recurring watch-reconnect race (1955 ms base input).
        TestCase {
            workload: templates::recurring_uaf(
                "Kubernetes.watch_reconnect",
                BUG9_SITES,
                5,
                ms(12),
                ms(30),
                ms(855),
            ),
            seeded_bug: Some(9),
        },
        // Bug-18: informer cache read races client teardown (1494 ms).
        TestCase {
            workload: templates::single_uaf(
                "Kubernetes.informer_teardown",
                BUG18_SITES,
                ms(20),
                ms(15),
                ms(695),
                4,
            ),
            seeded_bug: Some(18),
        },
    ];
    for w in [
        patterns::worker_pool("Kubernetes.list_pods", 4, 2, us(200), ms(950)),
        patterns::producer_consumer("Kubernetes.event_stream", 2, 4, us(150), ms(930)),
        patterns::pipeline("Kubernetes.reconcile_chain", 3, 5, us(180)),
        patterns::shared_dict("Kubernetes.resource_cache", 3, 2, us(80), ms(30)),
        patterns::cache_churn("Kubernetes.connection_pool", 3, 3, us(200), ms(900)),
    ] {
        tests.push(TestCase {
            workload: w,
            seeded_bug: None,
        });
    }
    for w in [
        patterns::timer_wheel("Kubernetes.resync_ticks", 5, us(1_000), us(200), ms(930)),
        patterns::retry_loop("Kubernetes.apiserver_retry", 5, us(250), ms(920)),
        patterns::barrier_phases("Kubernetes.rollout_waves", 3, 3, us(150), ms(900)),
        crate::extensions::task_request_pipeline("Kubernetes.admission_tasks", 8, 3),
    ] {
        tests.push(TestCase {
            workload: w,
            seeded_bug: None,
        });
    }
    App {
        name: "Kubernetes.Net",
        meta: AppMeta {
            loc_k: 173.2,
            mt_tests_paper: 21,
            stars_k: 0.7,
        },
        tests,
        bugs: vec![
            BugSpec {
                id: 9,
                app: "Kubernetes.Net",
                issue: "360",
                known: true,
                test_name: "Kubernetes.watch_reconnect".into(),
                summary: "watch reconnect disposes the response stream while the \
                          event callback still reads it; recurs per reconnect",
                expected_repair: None,
                paper: BugExpectation {
                    basic_runs: Some(1),
                    waffle_runs: 2,
                    base_ms: 1955,
                    basic_slowdown: Some(1.3),
                    waffle_slowdown: 2.0,
                },
            },
            BugSpec {
                id: 18,
                app: "Kubernetes.Net",
                issue: "n/a",
                known: false,
                test_name: "Kubernetes.informer_teardown".into(),
                summary: "informer cache read races the client teardown path",
                expected_repair: Some(RepairKind::EventEdge),
                paper: BugExpectation {
                    basic_runs: Some(2),
                    waffle_runs: 2,
                    base_ms: 1494,
                    basic_slowdown: Some(2.5),
                    waffle_slowdown: 2.0,
                },
            },
        ],
    }
}
