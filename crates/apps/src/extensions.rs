//! Extension workloads beyond the paper's evaluated suite.
//!
//! These model the *task-oriented* programs the paper's §4.1 notes point
//! at (.NET tasks scheduled on pool threads, with async-local state
//! propagation). They are deliberately **not** registered in
//! [`all_apps`](crate::all_apps) — the evaluated suite stays exactly the
//! paper's — and are consumed by the `task_pruning` bench, the extension
//! tests, and the examples.

use waffle_sim::time::{ms, us};
use waffle_sim::{SimTime, Workload, WorkloadBuilder};

/// A task-oriented request pipeline: the dispatcher initializes request
/// objects and spawns one handler task per request onto a worker pool.
/// Every init→use pair is spawn-ordered (invisible to thread-level
/// clocks), and the responses are disposed after a join — a workload
/// where async-local tracking prunes every candidate.
pub fn task_request_pipeline(name: &str, requests: u32, pool: u32) -> Workload {
    let mut b = WorkloadBuilder::new(name);
    let reqs = b.objects("request", requests);
    let ready = b.event("ready");
    let handlers: Vec<_> = (0..requests)
        .map(|i| {
            let r = reqs[i as usize];
            b.script(format!("handler{i}"), move |s| {
                s.compute(us(150))
                    .use_(r, "Handler.decode", us(40))
                    .compute(us(100))
                    .use_(r, "Handler.respond", us(40));
            })
        })
        .collect();
    let worker = b.script("pool-worker", move |s| {
        s.wait(ready).run_tasks();
    });
    let reqs_m = reqs.clone();
    let main = b.script("dispatcher", move |s| {
        s.fork_n(worker, pool).compute(ms(1));
        for (i, r) in reqs_m.iter().enumerate() {
            s.init(*r, "Dispatcher.accept", us(50))
                .spawn_task(handlers[i]);
        }
        s.signal(ready).join_children().pad(SimTime::from_ms(110));
        for r in reqs_m.iter() {
            s.dispose(*r, "Dispatcher.recycle", us(20));
        }
    });
    b.main(main);
    b.build()
}

/// A task-oriented workload carrying a real use-after-free: a cancel task
/// disposes the session while a poll task still uses it. The two tasks
/// are spawned from the same dispatcher (siblings — concurrent even under
/// async-local clocks), so the candidate survives pruning and Waffle can
/// expose it.
pub fn task_cancellation_race(name: &str, gap: SimTime, pad: SimTime) -> Workload {
    let mut b = WorkloadBuilder::new(name);
    let session = b.object("session");
    let ready = b.event("ready");
    let poll = b.script("poll-task", move |s| {
        s.compute(SimTime::from_ms(5))
            .use_(session, "Poll.read:12", us(40));
    });
    let cancel = b.script("cancel-task", move |s| {
        s.compute(SimTime::from_ms(5) + gap)
            .dispose(session, "Cancel.teardown:30", us(40));
    });
    let worker = b.script("pool-worker", move |s| {
        s.wait(ready).run_tasks();
    });
    let main = b.script("dispatcher", move |s| {
        s.pad(pad)
            .init(session, "Dispatcher.open:3", us(60))
            .fork(worker)
            .fork(worker)
            .pad(SimTime::from_ms(110))
            .spawn_task(poll)
            .spawn_task(cancel)
            .signal(ready)
            .join_children()
            .pad(pad);
    });
    b.main(main);
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use waffle_sim::{NullMonitor, SimConfig, Simulator};

    #[test]
    fn extension_workloads_are_clean_delay_free() {
        for seed in 0..6 {
            let cfg = SimConfig {
                seed,
                timing_noise_pct: 5,
                ..SimConfig::default()
            };
            let w = task_request_pipeline("x.pipeline", 6, 2);
            let r = Simulator::run(&w, cfg.clone(), &mut NullMonitor);
            assert!(!r.manifested(), "pipeline manifested");
            assert_eq!(r.tasks_spawned, 6);
            let w = task_cancellation_race("x.cancel", ms(8), ms(20));
            let r = Simulator::run(&w, cfg, &mut NullMonitor);
            assert!(!r.manifested(), "cancel race manifested delay-free");
        }
    }

    #[test]
    fn waffle_exposes_the_task_cancellation_race() {
        use waffle_core::{Detector, Tool};
        let w = task_cancellation_race("x.cancel2", ms(8), ms(20));
        let outcome = Detector::new(Tool::waffle()).detect(&w, 1);
        let report = outcome.exposed.expect("task race must be exposed");
        assert_eq!(report.site, "Poll.read:12");
        assert_eq!(report.total_runs, 2);
    }
}
