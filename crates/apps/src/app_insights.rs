//! ApplicationInsights: telemetry SDK model.
//!
//! Carries Bug-10 (issue #1106, Fig. 4a — the DiagnosticsListener
//! constructor racing the EventWritten handler, with an interfering
//! disposal) and Bug-14 (issue #2261 — partial construction: the buffer
//! event fires before the constructor finished initializing all fields).

use waffle_sim::RepairKind;
use waffle_sim::time::{ms, us};

use crate::framework::{App, AppMeta, BugExpectation, BugSpec, TestCase};
use crate::patterns;
use crate::templates::{self, BugSites};

const BUG10_SITES: BugSites = BugSites {
    init: "DiagnosticsLstnr.ctor:2",
    use_: "OnEventWritten:8",
    dispose: "DiagnosticsLstnr.Dispose:5",
};

const BUG14_SITES: BugSites = BugSites {
    init: "TelemetryBuffer.ctor:14",
    use_: "Buffer.OnFull:31",
    dispose: "TelemetryBuffer.Dispose:40",
};

pub(crate) fn app() -> App {
    let mut tests = vec![
        // Bug-10: interfering bugs on the diagnostics listener (143 ms
        // base input). The UBI gap is 20 ms, the UAF gap 25 ms; both
        // candidates target the same object from sibling threads.
        TestCase {
            workload: templates::interfering_bugs(
                "ApplicationInsights.diagnostics_listener",
                BUG10_SITES,
                ms(10),
                ms(20),
                ms(25),
                ms(20),
                3,
            ),
            seeded_bug: Some(10),
        },
        // Bug-14: the buffer-full handler fires 8 ms after the field
        // initialization it depends on (1349 ms base input).
        TestCase {
            workload: templates::single_ubi(
                "ApplicationInsights.buffer_onfull",
                BUG14_SITES,
                ms(12),
                ms(8),
                ms(560),
                4,
            ),
            seeded_bug: Some(14),
        },
    ];
    for (i, w) in [
        patterns::worker_pool("ApplicationInsights.telemetry_pool", 5, 2, us(150), ms(90)),
        patterns::producer_consumer("ApplicationInsights.channel_flush", 2, 5, us(100), ms(80)),
        patterns::pipeline("ApplicationInsights.enrichment_pipeline", 3, 6, us(120)),
        patterns::cache_churn("ApplicationInsights.metric_series", 3, 3, us(150), ms(70)),
        patterns::shared_dict("ApplicationInsights.context_tags", 3, 2, us(60), ms(30)),
        patterns::worker_pool("ApplicationInsights.sampling_workers", 4, 2, us(200), ms(60)),
        patterns::producer_consumer("ApplicationInsights.quickpulse_feed", 2, 4, us(90), ms(75)),
        patterns::pipeline("ApplicationInsights.processor_chain", 4, 4, us(100)),
    ]
    .into_iter()
    .enumerate()
    {
        let _ = i;
        tests.push(TestCase {
            workload: w,
            seeded_bug: None,
        });
    }
    for w in [
        patterns::timer_wheel("ApplicationInsights.heartbeat_timer", 6, us(900), us(150), ms(75)),
        patterns::retry_loop("ApplicationInsights.ingest_retry", 5, us(200), ms(80)),
        patterns::barrier_phases("ApplicationInsights.flush_barrier", 3, 2, us(120), ms(70)),
        crate::extensions::task_request_pipeline("ApplicationInsights.track_async", 6, 2),
    ] {
        tests.push(TestCase {
            workload: w,
            seeded_bug: None,
        });
    }
    App {
        name: "ApplicationInsights",
        meta: AppMeta {
            loc_k: 151.2,
            mt_tests_paper: 156,
            stars_k: 0.5,
        },
        tests,
        bugs: vec![
            BugSpec {
                id: 10,
                app: "ApplicationInsights",
                issue: "1106",
                known: true,
                test_name: "ApplicationInsights.diagnostics_listener".into(),
                summary: "constructor races the EventWritten handler; an interfering \
                          use-after-free candidate cancels WaffleBasic's delays (Fig. 4a)",
                expected_repair: Some(RepairKind::EventEdge),
                paper: BugExpectation {
                    basic_runs: None,
                    waffle_runs: 2,
                    base_ms: 143,
                    basic_slowdown: None,
                    waffle_slowdown: 4.9,
                },
            },
            BugSpec {
                id: 14,
                app: "ApplicationInsights",
                issue: "2261",
                known: false,
                test_name: "ApplicationInsights.buffer_onfull".into(),
                summary: "buffer-full event handler reads a field the constructor has \
                          not initialized yet",
                expected_repair: Some(RepairKind::EventEdge),
                paper: BugExpectation {
                    basic_runs: Some(2),
                    waffle_runs: 2,
                    base_ms: 1349,
                    basic_slowdown: Some(1.5),
                    waffle_slowdown: 1.3,
                },
            },
        ],
    }
}
