//! FluentAssertions: assertion-library model.
//!
//! Carries Bug-6 (issue #664 — the value-formatter registry is rebuilt per
//! assertion and raced by a reader; the pattern recurs, which is where
//! WaffleBasic's same-run injection shines) and Bug-7 (issue #862 — a
//! single-shot race between an assertion scope's use and its disposal).

use waffle_sim::RepairKind;
use waffle_sim::time::{ms, us};

use crate::framework::{App, AppMeta, BugExpectation, BugSpec, TestCase};
use crate::patterns;
use crate::templates::{self, BugSites};

const BUG6_SITES: BugSites = BugSites {
    init: "Formatter.AddFormatter:12",
    use_: "Formatter.ToString:88",
    dispose: "Formatter.RemoveFormatter:19",
};

const BUG7_SITES: BugSites = BugSites {
    init: "AssertionScope.ctor:7",
    use_: "AssertionScope.FailWith:52",
    dispose: "AssertionScope.Dispose:15",
};

pub(crate) fn app() -> App {
    let mut tests = vec![
        // Bug-6: recurring formatter-registry race (782 ms base input).
        TestCase {
            workload: templates::recurring_uaf(
                "FluentAssertions.formatter_registry",
                BUG6_SITES,
                6,
                ms(3),
                ms(12),
                ms(340),
            ),
            seeded_bug: Some(6),
        },
        // Bug-7: assertion-scope disposal races a late FailWith (831 ms).
        TestCase {
            workload: templates::single_uaf(
                "FluentAssertions.assertion_scope",
                BUG7_SITES,
                ms(15),
                ms(60),
                ms(375),
                2,
            ),
            seeded_bug: Some(7),
        },
    ];
    for w in [
        patterns::worker_pool("FluentAssertions.equivalency_pool", 3, 2, us(120), ms(350)),
        patterns::pipeline("FluentAssertions.rule_chain", 3, 4, us(100)),
        patterns::producer_consumer("FluentAssertions.subject_stream", 2, 3, us(80), ms(330)),
        patterns::shared_dict("FluentAssertions.format_cache", 3, 2, us(50), ms(30)),
        patterns::worker_pool("FluentAssertions.collection_asserts", 3, 2, us(90), ms(320)),
    ] {
        tests.push(TestCase {
            workload: w,
            seeded_bug: None,
        });
    }
    for w in [
        patterns::retry_loop("FluentAssertions.approval_retry", 4, us(150), ms(330)),
        patterns::timer_wheel("FluentAssertions.timeout_asserts", 4, us(800), us(120), ms(320)),
        patterns::barrier_phases("FluentAssertions.scoped_parallel", 3, 2, us(100), ms(330)),
    ] {
        tests.push(TestCase {
            workload: w,
            seeded_bug: None,
        });
    }
    App {
        name: "FluentAssertions",
        meta: AppMeta {
            loc_k: 47.7,
            mt_tests_paper: 41,
            stars_k: 2.5,
        },
        tests,
        bugs: vec![
            BugSpec {
                id: 6,
                app: "FluentAssertions",
                issue: "664",
                known: true,
                test_name: "FluentAssertions.formatter_registry".into(),
                summary: "formatter registry entry removed while a concurrent \
                          assertion formats through it; recurs every assertion",
                expected_repair: None,
                paper: BugExpectation {
                    basic_runs: Some(1),
                    waffle_runs: 2,
                    base_ms: 782,
                    basic_slowdown: Some(1.4),
                    waffle_slowdown: 2.7,
                },
            },
            BugSpec {
                id: 7,
                app: "FluentAssertions",
                issue: "862",
                known: true,
                test_name: "FluentAssertions.assertion_scope".into(),
                summary: "assertion scope disposed while a late failure message is \
                          being appended",
                expected_repair: Some(RepairKind::EventEdge),
                paper: BugExpectation {
                    basic_runs: Some(2),
                    waffle_runs: 2,
                    base_ms: 831,
                    basic_slowdown: Some(1.2),
                    waffle_slowdown: 2.5,
                },
            },
        ],
    }
}
