//! Types describing applications, test cases, and seeded bugs.

use waffle_sim::{RepairKind, Workload};

/// Static application metadata (the Table 3 columns). `loc_k` and
/// `stars_k` are provenance labels copied from the paper's description of
/// the original subjects, not measured quantities of this model.
#[derive(Debug, Clone, Copy)]
pub struct AppMeta {
    /// Lines of code of the original application, in thousands.
    pub loc_k: f64,
    /// Multi-threaded tests in the original suite.
    pub mt_tests_paper: u32,
    /// GitHub stars of the original, in thousands.
    pub stars_k: f64,
}

/// One multi-threaded test case (a workload plus provenance).
#[derive(Debug, Clone)]
pub struct TestCase {
    /// The simulated test input.
    pub workload: Workload,
    /// Table 4 bug id when this test is a bug-triggering input.
    pub seeded_bug: Option<u32>,
}

/// What Table 4 reports for a bug (used by EXPERIMENTS.md comparisons).
#[derive(Debug, Clone, Copy)]
pub struct BugExpectation {
    /// Detection runs WaffleBasic needs; `None` = missed within 50 runs.
    pub basic_runs: Option<u32>,
    /// Total runs Waffle needs (preparation + detection).
    pub waffle_runs: u32,
    /// Base execution time of the bug-triggering input, in ms.
    pub base_ms: u64,
    /// WaffleBasic slowdown (×) when it detects the bug.
    pub basic_slowdown: Option<f64>,
    /// Waffle slowdown (×).
    pub waffle_slowdown: f64,
}

/// A seeded MemOrder bug (one Table 4 row).
#[derive(Debug, Clone)]
pub struct BugSpec {
    /// Table 4 number (1–18).
    pub id: u32,
    /// Owning application name.
    pub app: &'static str,
    /// Upstream issue id ("n/a" for the two unreported ones).
    pub issue: &'static str,
    /// Whether the bug was previously known (top 12) or found by Waffle
    /// (bottom 6).
    pub known: bool,
    /// Name of the bug-triggering workload.
    pub test_name: String,
    /// One-line description of the defect.
    pub summary: &'static str,
    /// The repair the fix-synthesis grammar certifies for this bug, or
    /// `None` when the real fix lies outside the grammar (the oracle then
    /// reports the case unrepairable rather than emitting a bogus patch).
    /// Pinned by `tests/repair_differential.rs` against actual synthesis.
    pub expected_repair: Option<RepairKind>,
    /// The paper's reported numbers, for shape comparison.
    pub paper: BugExpectation,
}

/// An application: metadata, test suite, and seeded bugs.
#[derive(Debug, Clone)]
pub struct App {
    /// Application name (matches the paper's Table 3).
    pub name: &'static str,
    /// Table 3 metadata.
    pub meta: AppMeta,
    /// The multi-threaded test suite (bug inputs included).
    pub tests: Vec<TestCase>,
    /// Seeded bugs owned by this application.
    pub bugs: Vec<BugSpec>,
}

impl App {
    /// Finds a test case by workload name.
    pub fn test(&self, name: &str) -> Option<&TestCase> {
        self.tests.iter().find(|t| t.workload.name == name)
    }

    /// The bug-triggering workload for a bug id, if owned by this app.
    pub fn bug_workload(&self, id: u32) -> Option<&Workload> {
        let spec = self.bugs.iter().find(|b| b.id == id)?;
        self.test(&spec.test_name).map(|t| &t.workload)
    }

    /// Background (bug-free) tests only.
    pub fn background_tests(&self) -> impl Iterator<Item = &TestCase> {
        self.tests.iter().filter(|t| t.seeded_bug.is_none())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use waffle_sim::{SimTime, WorkloadBuilder};

    fn dummy_workload(name: &str) -> Workload {
        let mut b = WorkloadBuilder::new(name);
        let o = b.object("o");
        let m = b.script("main", move |s| {
            s.init(o, "i", SimTime::from_us(1));
        });
        b.main(m);
        b.build()
    }

    #[test]
    fn app_lookups_work() {
        let app = App {
            name: "demo",
            meta: AppMeta {
                loc_k: 1.0,
                mt_tests_paper: 2,
                stars_k: 0.1,
            },
            tests: vec![
                TestCase {
                    workload: dummy_workload("demo.bug"),
                    seeded_bug: Some(1),
                },
                TestCase {
                    workload: dummy_workload("demo.ok"),
                    seeded_bug: None,
                },
            ],
            bugs: vec![BugSpec {
                id: 1,
                app: "demo",
                issue: "42",
                known: true,
                test_name: "demo.bug".into(),
                summary: "test",
                expected_repair: None,
                paper: BugExpectation {
                    basic_runs: Some(2),
                    waffle_runs: 2,
                    base_ms: 100,
                    basic_slowdown: Some(1.5),
                    waffle_slowdown: 1.2,
                },
            }],
        };
        assert!(app.test("demo.bug").is_some());
        assert!(app.test("missing").is_none());
        assert_eq!(app.bug_workload(1).unwrap().name, "demo.bug");
        assert!(app.bug_workload(9).is_none());
        assert_eq!(app.background_tests().count(), 1);
    }
}
