//! NSwag: OpenAPI-toolchain model.
//!
//! Carries Bug-5 (issue #3015 — the generator's document registry entry is
//! disposed by the watch loop while a generation pass still reads it).

use waffle_sim::RepairKind;
use waffle_sim::time::{ms, us};

use crate::framework::{App, AppMeta, BugExpectation, BugSpec, TestCase};
use crate::patterns;
use crate::templates::{self, BugSites};

const BUG5_SITES: BugSites = BugSites {
    init: "DocumentRegistry.Load:16",
    use_: "Generator.Emit:73",
    dispose: "WatchLoop.Invalidate:29",
};

pub(crate) fn app() -> App {
    let mut tests = vec![
        // Bug-5: single-shot use-after-free, 30 ms gap (887 ms base).
        TestCase {
            workload: templates::single_uaf(
                "NSwag.document_registry",
                BUG5_SITES,
                ms(12),
                ms(30),
                ms(390),
                3,
            ),
            seeded_bug: Some(5),
        },
    ];
    for w in [
        patterns::worker_pool("NSwag.parallel_generation", 3, 2, us(150), ms(400)),
        patterns::pipeline("NSwag.schema_pipeline", 4, 4, us(120)),
        patterns::producer_consumer("NSwag.operation_stream", 2, 3, us(100), ms(410)),
        patterns::shared_dict("NSwag.type_cache", 3, 2, us(60), ms(30)),
    ] {
        tests.push(TestCase {
            workload: w,
            seeded_bug: None,
        });
    }
    for w in [
        patterns::retry_loop("NSwag.fetch_retry", 4, us(180), ms(400)),
        patterns::timer_wheel("NSwag.watch_ticks", 4, us(900), us(140), ms(395)),
        crate::extensions::task_request_pipeline("NSwag.codegen_tasks", 6, 2),
    ] {
        tests.push(TestCase {
            workload: w,
            seeded_bug: None,
        });
    }
    App {
        name: "NSwag",
        meta: AppMeta {
            loc_k: 101.5,
            mt_tests_paper: 18,
            stars_k: 4.9,
        },
        tests,
        bugs: vec![BugSpec {
            id: 5,
            app: "NSwag",
            issue: "3015",
            known: true,
            test_name: "NSwag.document_registry".into(),
            summary: "watch loop invalidates a document registry entry while a \
                      generation pass reads it",
            expected_repair: Some(RepairKind::EventEdge),
            paper: BugExpectation {
                basic_runs: Some(2),
                waffle_runs: 2,
                base_ms: 887,
                basic_slowdown: Some(2.1),
                waffle_slowdown: 1.8,
            },
        }],
    }
}
