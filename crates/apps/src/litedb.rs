//! LiteDB: embedded-database model.
//!
//! Carries Bug-8 (issue #1028, Fig. 4a shape — the transaction monitor's
//! slot is initialized by one thread, read by the checkpoint thread, and
//! released shortly after; the two bug candidates interfere). LiteDB has
//! only a handful of multi-threaded tests (Table 3), so the suite here is
//! small and it is excluded from the Table 5 averages, as in the paper.

use waffle_sim::RepairKind;
use waffle_sim::time::{ms, us};

use crate::framework::{App, AppMeta, BugExpectation, BugSpec, TestCase};
use crate::patterns;
use crate::templates::{self, BugSites};

const BUG8_SITES: BugSites = BugSites {
    init: "TransactionMonitor.Create:21",
    use_: "Checkpoint.ReadSlot:64",
    dispose: "TransactionMonitor.Release:30",
};

pub(crate) fn app() -> App {
    let mut tests = vec![
        // Bug-8: interfering candidates on the transaction slot (495 ms).
        TestCase {
            workload: templates::interfering_bugs(
                "LiteDB.transaction_monitor",
                BUG8_SITES,
                ms(8),
                ms(15),
                ms(30),
                ms(195),
                3,
            ),
            seeded_bug: Some(8),
        },
    ];
    for w in [
        patterns::worker_pool("LiteDB.concurrent_insert", 5, 3, us(150), ms(200)),
        patterns::producer_consumer("LiteDB.wal_flush", 3, 5, us(120), ms(210)),
        patterns::shared_dict("LiteDB.page_cache", 3, 2, us(70), ms(30)),
    ] {
        tests.push(TestCase {
            workload: w,
            seeded_bug: None,
        });
    }
    for w in [
        patterns::barrier_phases("LiteDB.checkpoint_phases", 3, 2, us(120), ms(200)),
        patterns::retry_loop("LiteDB.lock_retry", 4, us(150), ms(200)),
    ] {
        tests.push(TestCase {
            workload: w,
            seeded_bug: None,
        });
    }
    App {
        name: "LiteDB",
        meta: AppMeta {
            loc_k: 18.3,
            mt_tests_paper: 7,
            stars_k: 6.2,
        },
        tests,
        bugs: vec![BugSpec {
            id: 8,
            app: "LiteDB",
            issue: "1028",
            known: true,
            test_name: "LiteDB.transaction_monitor".into(),
            summary: "transaction slot released while the checkpoint thread reads \
                      it; the use-before-init candidate on the same slot cancels \
                      WaffleBasic's delays",
            expected_repair: Some(RepairKind::EventEdge),
            paper: BugExpectation {
                basic_runs: None,
                waffle_runs: 2,
                base_ms: 495,
                basic_slowdown: None,
                waffle_slowdown: 4.9,
            },
        }],
    }
}
