//! SSH.NET: SSH-client model.
//!
//! Carries Bug-1 (issue #80 — the channel's message loop uses the session
//! socket while a disconnect disposes it) and Bug-2 (issue #453 — the
//! keep-alive timer fires before the session semaphore is initialized).

use waffle_sim::RepairKind;
use waffle_sim::time::{ms, us};

use crate::framework::{App, AppMeta, BugExpectation, BugSpec, TestCase};
use crate::patterns;
use crate::templates::{self, BugSites};

const BUG1_SITES: BugSites = BugSites {
    init: "Session.Connect:31",
    use_: "Channel.OnData:94",
    dispose: "Session.Disconnect:47",
};

const BUG2_SITES: BugSites = BugSites {
    init: "Session.InitSemaphore:12",
    use_: "KeepAlive.OnTimer:66",
    dispose: "Session.Dispose:80",
};

pub(crate) fn app() -> App {
    let mut tests = vec![
        // Bug-1: channel data handler races the disconnect (2464 ms base,
        // 40 ms gap).
        TestCase {
            workload: templates::single_uaf(
                "SshNet.channel_disconnect",
                BUG1_SITES,
                ms(30),
                ms(40),
                ms(1180),
                4,
            ),
            seeded_bug: Some(1),
        },
        // Bug-2: keep-alive timer fires 25 ms after the semaphore init
        // (1042 ms base).
        TestCase {
            workload: templates::single_ubi(
                "SshNet.keepalive_semaphore",
                BUG2_SITES,
                ms(15),
                ms(25),
                ms(400),
                3,
            ),
            seeded_bug: Some(2),
        },
    ];
    for w in [
        patterns::worker_pool("SshNet.sftp_uploads", 4, 2, us(200), ms(320)),
        patterns::producer_consumer("SshNet.packet_stream", 2, 4, us(150), ms(310)),
        patterns::pipeline("SshNet.cipher_chain", 3, 5, us(130)),
        patterns::shared_dict("SshNet.channel_table", 3, 2, us(70), ms(30)),
        patterns::cache_churn("SshNet.forwarded_ports", 3, 3, us(180), ms(300)),
        patterns::worker_pool("SshNet.shell_streams", 3, 2, us(160), ms(300)),
    ] {
        tests.push(TestCase {
            workload: w,
            seeded_bug: None,
        });
    }
    for w in [
        patterns::timer_wheel("SshNet.keepalive_ticks", 5, us(900), us(150), ms(310)),
        patterns::retry_loop("SshNet.auth_retry", 4, us(200), ms(310)),
        patterns::barrier_phases("SshNet.parallel_exec", 3, 2, us(120), ms(300)),
        crate::extensions::task_request_pipeline("SshNet.async_commands", 6, 2),
    ] {
        tests.push(TestCase {
            workload: w,
            seeded_bug: None,
        });
    }
    App {
        name: "SSH.Net",
        meta: AppMeta {
            loc_k: 84.4,
            mt_tests_paper: 117,
            stars_k: 2.8,
        },
        tests,
        bugs: vec![
            BugSpec {
                id: 1,
                app: "SSH.Net",
                issue: "80",
                known: true,
                test_name: "SshNet.channel_disconnect".into(),
                summary: "channel data handler dereferences the session socket while \
                          a disconnect disposes it",
                expected_repair: Some(RepairKind::EventEdge),
                paper: BugExpectation {
                    basic_runs: Some(2),
                    waffle_runs: 2,
                    base_ms: 2464,
                    basic_slowdown: Some(1.4),
                    waffle_slowdown: 1.2,
                },
            },
            BugSpec {
                id: 2,
                app: "SSH.Net",
                issue: "453",
                known: true,
                test_name: "SshNet.keepalive_semaphore".into(),
                summary: "keep-alive timer fires before the session semaphore is \
                          initialized",
                expected_repair: Some(RepairKind::EventEdge),
                paper: BugExpectation {
                    basic_runs: Some(2),
                    waffle_runs: 2,
                    base_ms: 1042,
                    basic_slowdown: Some(1.7),
                    waffle_slowdown: 1.6,
                },
            },
        ],
    }
}
