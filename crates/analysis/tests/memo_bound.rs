//! Regression: analysis peak-heap must not scale with *window pairs* on a
//! clock-diverse trace.
//!
//! Every event here carries a distinct vector-clock snapshot and every
//! cross-thread (Init, Use) pair is concurrent, so the happens-before memo
//! sees a distinct `(ClockId, ClockId)` key per examined pair — quadratic
//! in events. The unbounded `HashMap` memo this suite was written against
//! made analysis allocate ~16× more when the trace grew 4× (window pairs
//! grow 16×); the direct-mapped table sized from the clock pool keeps the
//! growth linear. The test pins the ratio, with the reference scanner
//! confirming the bounded memo still yields byte-identical plans.

use waffle_analysis::{analyze_indexed, analyze_unindexed, AnalyzerConfig};
use waffle_mem::{AccessKind, ObjectId, SiteRegistry};
use waffle_sim::{SimTime, ThreadId};
use waffle_trace::{ClockPool, Trace, TraceEvent, TraceIndex};
use waffle_vclock::ClockSnapshot;

/// Heap-byte counter wrapping the system allocator (same proxy the bench
/// suite uses; the workspace has no allocator introspection deps).
mod alloc_counter {
    #![allow(unsafe_code)] // GlobalAlloc is inherently unsafe; test-only code.

    use std::alloc::{GlobalAlloc, Layout, System};
    use std::sync::atomic::{AtomicU64, Ordering};

    static LIVE: AtomicU64 = AtomicU64::new(0);
    static PEAK: AtomicU64 = AtomicU64::new(0);

    /// Pass-through allocator tracking live and peak heap bytes.
    pub struct CountingAlloc;

    unsafe impl GlobalAlloc for CountingAlloc {
        unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
            let p = System.alloc(layout);
            if !p.is_null() {
                let live =
                    LIVE.fetch_add(layout.size() as u64, Ordering::Relaxed) + layout.size() as u64;
                PEAK.fetch_max(live, Ordering::Relaxed);
            }
            p
        }

        unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
            System.dealloc(ptr, layout);
            LIVE.fetch_sub(layout.size() as u64, Ordering::Relaxed);
        }
    }

    /// Restarts the peak watermark from the current live total.
    pub fn reset_peak() {
        PEAK.store(LIVE.load(Ordering::Relaxed), Ordering::Relaxed);
    }

    /// Peak live heap bytes since the last [`reset_peak`].
    pub fn peak() -> u64 {
        PEAK.load(Ordering::Relaxed)
    }
}

#[global_allocator]
static ALLOC: alloc_counter::CountingAlloc = alloc_counter::CountingAlloc;

/// `n` events on one object, 1 µs apart (all inside one δ window):
/// alternating `Init` on thread 0 / `Use` on thread 1, each event with a
/// fresh single-entry snapshot, so every examined pair is concurrent and
/// clock-distinct.
fn clock_diverse_trace(n: u64) -> Trace {
    let mut sites = SiteRegistry::new();
    let si = sites.register("div.init", AccessKind::Init);
    let su = sites.register("div.use", AccessKind::Use);
    let mut clocks = ClockPool::new();
    let events = (0..n)
        .map(|i| {
            let thread = ThreadId((i % 2) as u32);
            let (site, kind) = if i % 2 == 0 {
                (si, AccessKind::Init)
            } else {
                (su, AccessKind::Use)
            };
            TraceEvent {
                time: SimTime::from_us(i + 1),
                thread,
                site,
                obj: ObjectId(0),
                kind,
                dyn_index: i / 2,
                clock: clocks.intern(ClockSnapshot::from_entries([(thread, i + 1)])),
            }
        })
        .collect();
    Trace {
        workload: "memo.diverse".into(),
        sites,
        events,
        forks: vec![],
        clocks,
        end_time: SimTime::from_us(n + 2),
    }
}

/// Peak heap bytes of one `analyze_indexed` pass over a prebuilt index.
fn analysis_peak(trace: &Trace, config: &AnalyzerConfig) -> u64 {
    let index = TraceIndex::build(trace);
    alloc_counter::reset_peak();
    let plan = analyze_indexed(&index, config, 1);
    let peak = alloc_counter::peak();
    drop(plan);
    peak
}

#[test]
fn memo_peak_heap_scales_with_clocks_not_window_pairs() {
    // Interference obs are O(window pairs) by design (and post-filtered);
    // switch them off so the memo is the only quadratic suspect.
    let config = AnalyzerConfig::default().without_interference_control();

    let small = clock_diverse_trace(400);
    let large = clock_diverse_trace(1600);

    // The setup really is quadratic in window pairs: 4× events → ~16×
    // examined pairs, all clock-distinct, none pruned.
    let index = TraceIndex::build(&large);
    let plan_large = analyze_indexed(&index, &config, 1);
    assert!(
        plan_large.stats.examined >= 300_000,
        "expected ~320k examined pairs, got {}",
        plan_large.stats.examined
    );
    assert_eq!(plan_large.stats.pruned_ordered, 0, "all pairs concurrent");
    drop(plan_large);
    drop(index);

    let peak_small = analysis_peak(&small, &config).max(1);
    let peak_large = analysis_peak(&large, &config);

    // Unbounded memo: ~16× (one map entry per examined pair). Bounded
    // memo: ≤4× (table grows with the clock pool, linear in events).
    let ratio = peak_large as f64 / peak_small as f64;
    assert!(
        ratio < 8.0,
        "peak heap grew {ratio:.1}x for 4x events ({peak_small} -> {peak_large} bytes): \
         the HB memo is scaling with window pairs again"
    );
    // Absolute backstop: an unbounded memo on 640k pairs costs tens of MB.
    assert!(
        peak_large < 8 << 20,
        "peak heap {peak_large} bytes on a 1600-event trace: memo unbounded?"
    );
}

#[test]
fn bounded_memo_is_still_exact() {
    // Collision overwrites may recompute, never corrupt: plans stay
    // byte-identical to the memo-free reference scanner even when the
    // distinct-pair count dwarfs the table.
    let config = AnalyzerConfig::default();
    let trace = clock_diverse_trace(600);
    let reference = analyze_unindexed(&trace, &config).to_json().unwrap();
    let index = TraceIndex::build(&trace);
    for jobs in [1, 2, 8] {
        let got = analyze_indexed(&index, &config, jobs).to_json().unwrap();
        assert_eq!(got, reference, "bounded memo diverged at jobs={jobs}");
    }
}
