//! Property tests: analyzer invariants over randomly generated traces.

use proptest::prelude::*;
use waffle_analysis::{
    analyze, analyze_unindexed, AnalyzerConfig, BugKind, InterferenceSet,
};
use waffle_mem::{AccessKind, ObjectId, SiteId, SiteRegistry};
use waffle_sim::{SimTime, ThreadId};
use waffle_trace::{ClockPool, Trace, TraceEvent};
use waffle_vclock::ClockSnapshot;

/// A compact random event description.
#[derive(Debug, Clone)]
struct Ev {
    t_us: u64,
    thread: u32,
    obj: u32,
    kind: AccessKind,
    // Clock entry for the event's own thread; other entries empty →
    // clocks are concurrent unless threads coincide.
    tick: u64,
}

fn kind_strategy() -> impl Strategy<Value = AccessKind> {
    prop_oneof![
        Just(AccessKind::Init),
        Just(AccessKind::Use),
        Just(AccessKind::Dispose),
    ]
}

fn events_strategy() -> impl Strategy<Value = Vec<Ev>> {
    proptest::collection::vec(
        (0u64..500_000, 0u32..4, 0u32..3, kind_strategy(), 1u64..5).prop_map(
            |(t_us, thread, obj, kind, tick)| Ev {
                t_us,
                thread,
                obj,
                kind,
                tick,
            },
        ),
        0..60,
    )
}

fn build_trace(mut evs: Vec<Ev>) -> Trace {
    evs.sort_by_key(|e| e.t_us);
    let mut sites = SiteRegistry::new();
    let mut clocks = ClockPool::new();
    let events = evs
        .iter()
        .map(|e| {
            // One site per (thread, kind) pair, like static code locations.
            let site = sites.register(&format!("s{}k{}", e.thread, e.kind), e.kind);
            TraceEvent {
                time: SimTime::from_us(e.t_us),
                thread: ThreadId(e.thread),
                site,
                obj: ObjectId(e.obj),
                kind: e.kind,
                dyn_index: 0,
                clock: clocks.intern(ClockSnapshot::from_entries([(
                    ThreadId(e.thread),
                    e.tick,
                )])),
            }
        })
        .collect();
    Trace {
        workload: "prop".into(),
        sites,
        events,
        forks: vec![],
        clocks,
        end_time: SimTime::from_ms(500),
    }
}

proptest! {
    /// Soundness: every candidate pair corresponds to at least one
    /// real near-miss observation in the trace (right kinds, same object,
    /// different threads, within δ, in order).
    #[test]
    fn candidates_are_sound(evs in events_strategy()) {
        let trace = build_trace(evs);
        let plan = analyze(&trace, &AnalyzerConfig::default());
        for c in &plan.candidates {
            let (k1, k2) = match c.kind {
                BugKind::UseBeforeInit => (AccessKind::Init, AccessKind::Use),
                BugKind::UseAfterFree => (AccessKind::Use, AccessKind::Dispose),
            };
            let witnessed = trace.events.iter().enumerate().any(|(i, e1)| {
                e1.site == c.delay_site
                    && e1.kind == k1
                    && trace.events[i + 1..].iter().any(|e2| {
                        e2.site == c.other_site
                            && e2.kind == k2
                            && e2.obj == e1.obj
                            && e2.thread != e1.thread
                            && e2.time.saturating_sub(e1.time) < plan.delta
                            && e2.time >= e1.time
                    })
            });
            prop_assert!(witnessed, "unwitnessed candidate {:?}", c);
        }
    }

    /// The parent-child pruning only ever removes candidates: the pruned
    /// plan's candidate set is a subset of the unpruned plan's.
    #[test]
    fn pruning_is_monotone(evs in events_strategy()) {
        let trace = build_trace(evs);
        let pruned = analyze(&trace, &AnalyzerConfig::default());
        let unpruned = analyze(&trace, &AnalyzerConfig::default().without_parent_child());
        for c in &pruned.candidates {
            prop_assert!(
                unpruned
                    .candidates
                    .iter()
                    .any(|u| u.delay_site == c.delay_site
                        && u.other_site == c.other_site
                        && u.kind == c.kind),
                "pruned plan invented candidate {:?}",
                c
            );
        }
        prop_assert!(pruned.candidates.len() <= unpruned.candidates.len());
    }

    /// Delay lengths: every planned delay is α· the max gap over that
    /// location's pairs, and strictly exceeds each observed gap.
    #[test]
    fn delay_lengths_cover_gaps(evs in events_strategy()) {
        let trace = build_trace(evs);
        let plan = analyze(&trace, &AnalyzerConfig::default());
        for c in &plan.candidates {
            let planned = plan.delay_for(c.delay_site);
            prop_assert!(planned >= c.max_gap.scale(115, 100));
            // α > 1 ⇒ the delay beats the observed gap (unless sub-µs).
            if c.max_gap.as_us() >= 7 {
                prop_assert!(planned > c.max_gap);
            }
        }
    }

    /// The interference set only couples delay locations of the plan.
    #[test]
    fn interference_pairs_are_delay_sites(evs in events_strategy()) {
        let trace = build_trace(evs);
        let plan = analyze(&trace, &AnalyzerConfig::default());
        let delay_sites: std::collections::HashSet<SiteId> =
            plan.delay_sites().collect();
        for (a, b) in plan.interference.iter() {
            prop_assert!(
                delay_sites.contains(&a) || delay_sites.contains(&b),
                "interference pair ({a}, {b}) references no delay site"
            );
        }
    }

    /// Analysis is a pure function of the trace.
    #[test]
    fn analysis_is_deterministic(evs in events_strategy()) {
        let trace = build_trace(evs);
        let p1 = analyze(&trace, &AnalyzerConfig::default());
        let p2 = analyze(&trace, &AnalyzerConfig::default());
        prop_assert_eq!(p1.to_json().unwrap(), p2.to_json().unwrap());
    }

    /// Plans survive the persistence round trip for arbitrary traces.
    #[test]
    fn plans_round_trip(evs in events_strategy()) {
        let trace = build_trace(evs);
        let plan = analyze(&trace, &AnalyzerConfig::default());
        let back = waffle_analysis::Plan::from_json(&plan.to_json().unwrap()).unwrap();
        prop_assert_eq!(back.candidates, plan.candidates);
        prop_assert_eq!(back.delay_len, plan.delay_len);
        prop_assert_eq!(back.interference, plan.interference);
    }

    /// The fused indexed pipeline is byte-equivalent to the reference
    /// per-pass scanners on arbitrary traces, at every sharding width.
    #[test]
    fn indexed_pipeline_matches_reference(
        evs in events_strategy(),
        jobs in 1usize..5,
    ) {
        let trace = build_trace(evs);
        let reference = analyze_unindexed(&trace, &AnalyzerConfig::default());
        let indexed = waffle_analysis::analyze_jobs(&trace, &AnalyzerConfig::default(), jobs);
        prop_assert_eq!(indexed.to_json().unwrap(), reference.to_json().unwrap());
    }

    /// `InterferenceSet` is symmetric regardless of the order pairs were
    /// inserted or queried in: `interferes(a, b) == interferes(b, a)` for
    /// every site pair, under arbitrary insert sequences.
    #[test]
    fn interference_set_is_symmetric_under_any_insert_order(
        inserts in proptest::collection::vec((0u32..8, 0u32..8, 0u8..2), 0..40),
    ) {
        let mut set = InterferenceSet::new();
        for &(a, b, flip) in &inserts {
            let (a, b) = (SiteId(a), SiteId(b));
            if flip == 1 {
                set.insert(b, a);
            } else {
                set.insert(a, b);
            }
        }
        for a in 0..8u32 {
            for b in 0..8u32 {
                let (a, b) = (SiteId(a), SiteId(b));
                prop_assert_eq!(set.interferes(a, b), set.interferes(b, a));
                let expected = inserts
                    .iter()
                    .any(|&(x, y, _)| {
                        (SiteId(x), SiteId(y)) == (a, b) || (SiteId(x), SiteId(y)) == (b, a)
                    });
                prop_assert_eq!(set.interferes(a, b), expected);
            }
        }
    }
}
