//! Near-miss candidate construction and happens-before pruning.

use std::collections::{BTreeMap, HashMap};

use serde::{Deserialize, Serialize};
use waffle_mem::{AccessKind, ObjectId, SiteId};
use waffle_sim::SimTime;
use waffle_trace::{Trace, TraceEvent};

/// Which MemOrder bug a candidate pair could expose.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BugKind {
    /// Delay the initialization at ℓ1 past the use at ℓ2.
    UseBeforeInit,
    /// Delay the use at ℓ1 past the disposal at ℓ2.
    UseAfterFree,
}

impl BugKind {
    /// Human-readable label.
    pub fn label(self) -> &'static str {
        match self {
            BugKind::UseBeforeInit => "use-before-init",
            BugKind::UseAfterFree => "use-after-free",
        }
    }
}

/// A MemOrder bug candidate `{ℓ1, ℓ2}`: ℓ1 is the *delay location* (where
/// the runtime injects), ℓ2 the operation to be overtaken.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CandidatePair {
    /// The delay-injection location.
    pub delay_site: SiteId,
    /// The location the delayed operation must fall behind.
    pub other_site: SiteId,
    /// The bug class this pair could expose.
    pub kind: BugKind,
    /// One object the near-miss was observed on (reporting context).
    ///
    /// **Pinned selection rule**: the representative is the first admitted
    /// observation scanning objects in ascending `ObjectId` order (trace
    /// order within an object) — i.e. the *lowest-numbered* object with an
    /// admitted observation of this pair. Both the sequential scanner and
    /// the sharded indexed pipeline implement this rule, so reports cannot
    /// silently change with `--jobs`; `obj_representative_is_pinned`
    /// regresses it.
    pub obj: ObjectId,
    /// Largest observed gap `|τ1 − τ2|` across near-miss observations.
    pub max_gap: SimTime,
    /// Number of near-miss observations of this pair in the trace.
    pub observations: u32,
}

/// Configuration for the near-miss scan.
#[derive(Debug, Clone, Copy)]
pub struct NearMissConfig {
    /// The near-miss window δ (default 100 ms, as in TSVD and the paper).
    pub delta: SimTime,
    /// Whether to prune pairs whose event clocks are ordered (§4.1).
    /// Disabled by the "no parent-child analysis" ablation (Table 7).
    pub prune_ordered: bool,
}

impl Default for NearMissConfig {
    fn default() -> Self {
        Self {
            delta: SimTime::from_ms(100),
            prune_ordered: true,
        }
    }
}

/// Statistics from a near-miss scan (used by experiment reporting).
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct NearMissStats {
    /// Same-object event pairs that fell inside the δ window (before the
    /// thread and kind filters) — the raw work the windowed sweep did, and
    /// the denominator for the bench's pairs/sec rate.
    pub window_pairs: u64,
    /// Near-miss event pairs examined (same object, different thread,
    /// within δ, kinds matching a bug pattern).
    pub examined: u64,
    /// Pairs discarded because their clocks were ordered.
    pub pruned_ordered: u64,
    /// Distinct candidate site pairs admitted to `S`.
    pub admitted: usize,
}

/// Runs the near-miss heuristic over a trace and returns the candidate set
/// `S` plus scan statistics.
///
/// For every object, an `Init` at τ1 followed by a `Use` at τ2 with
/// `0 ≤ τ2 − τ1 < δ` from a different thread yields a use-before-init
/// candidate (delay the init); a `Use` at τ1 followed by a `Dispose` at τ2
/// under the same constraints yields a use-after-free candidate (delay the
/// use). Pairs whose vector clocks are ordered are pruned when
/// `prune_ordered` is set.
///
/// This is the *reference* per-pass scanner, kept as the semantic spec the
/// indexed single-pass pipeline ([`crate::pipeline`]) is equivalence-tested
/// against; production paths go through [`crate::analyze`], which runs the
/// pipeline over the columnar [`waffle_trace::TraceIndex`].
pub fn near_miss_candidates(
    trace: &Trace,
    config: &NearMissConfig,
) -> (Vec<CandidatePair>, NearMissStats) {
    let mut stats = NearMissStats::default();
    // Group MemOrder events per object, preserving trace (time) order.
    // BTreeMap keeps the scan order — and therefore each pair's
    // representative observation — deterministic.
    let mut per_obj: BTreeMap<ObjectId, Vec<&TraceEvent>> = BTreeMap::new();
    for e in trace.mem_order_events() {
        per_obj.entry(e.obj).or_default().push(e);
    }
    let mut pairs: HashMap<(SiteId, SiteId, BugKind), CandidatePair> = HashMap::new();
    for events in per_obj.values() {
        for (i, e1) in events.iter().enumerate() {
            // Scan forward while within the near-miss window.
            for e2 in events[i + 1..].iter() {
                let gap = e2.time.saturating_sub(e1.time);
                if gap >= config.delta {
                    break;
                }
                stats.window_pairs += 1;
                if e2.thread == e1.thread {
                    continue;
                }
                let kind = match (e1.kind, e2.kind) {
                    (AccessKind::Init, AccessKind::Use) => BugKind::UseBeforeInit,
                    (AccessKind::Use, AccessKind::Dispose) => BugKind::UseAfterFree,
                    _ => continue,
                };
                stats.examined += 1;
                if config.prune_ordered
                    && trace
                        .event_clock(e1)
                        .order(trace.event_clock(e2))
                        .is_ordered()
                {
                    stats.pruned_ordered += 1;
                    continue;
                }
                let entry = pairs
                    .entry((e1.site, e2.site, kind))
                    .or_insert_with(|| CandidatePair {
                        delay_site: e1.site,
                        other_site: e2.site,
                        kind,
                        obj: e1.obj,
                        max_gap: SimTime::ZERO,
                        observations: 0,
                    });
                entry.max_gap = entry.max_gap.max(gap);
                entry.observations += 1;
            }
        }
    }
    let mut out: Vec<CandidatePair> = pairs.into_values().collect();
    // Deterministic order for plans and reports.
    out.sort_by_key(|p| (p.delay_site, p.other_site, p.kind as u8));
    stats.admitted = out.len();
    (out, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use waffle_mem::SiteRegistry;
    use waffle_sim::ThreadId;
    use waffle_trace::ClockPool;
    use waffle_vclock::ClockSnapshot;

    struct TB {
        sites: SiteRegistry,
        events: Vec<TraceEvent>,
        clocks: ClockPool,
    }

    impl TB {
        fn new() -> Self {
            Self {
                sites: SiteRegistry::new(),
                events: Vec::new(),
                clocks: ClockPool::new(),
            }
        }

        fn ev(
            &mut self,
            t_us: u64,
            thread: u32,
            site: &str,
            obj: u32,
            kind: AccessKind,
            clock: &[(u32, u64)],
        ) -> &mut Self {
            let site = self.sites.register(site, kind);
            let clock = self.clocks.intern(ClockSnapshot::from_entries(
                clock.iter().map(|&(t, v)| (ThreadId(t), v)),
            ));
            self.events.push(TraceEvent {
                time: SimTime::from_us(t_us),
                thread: ThreadId(thread),
                site,
                obj: ObjectId(obj),
                kind,
                dyn_index: 0,
                clock,
            });
            self
        }

        fn trace(self) -> Trace {
            Trace {
                workload: "test".into(),
                sites: self.sites,
                events: self.events,
                forks: vec![],
                clocks: self.clocks,
                end_time: SimTime::from_ms(10),
            }
        }
    }

    #[test]
    fn init_use_near_miss_yields_ubi_candidate() {
        let mut b = TB::new();
        b.ev(100, 0, "init", 0, AccessKind::Init, &[(0, 2)]);
        b.ev(150, 1, "use", 0, AccessKind::Use, &[(1, 1)]);
        let (pairs, stats) = near_miss_candidates(&b.trace(), &NearMissConfig::default());
        assert_eq!(pairs.len(), 1);
        assert_eq!(pairs[0].kind, BugKind::UseBeforeInit);
        assert_eq!(pairs[0].max_gap, SimTime::from_us(50));
        assert_eq!(stats.window_pairs, 1);
        assert_eq!(stats.examined, 1);
        assert_eq!(stats.pruned_ordered, 0);
    }

    #[test]
    fn use_dispose_near_miss_yields_uaf_candidate() {
        let mut b = TB::new();
        b.ev(100, 1, "use", 0, AccessKind::Use, &[(1, 1)]);
        b.ev(180, 0, "dispose", 0, AccessKind::Dispose, &[(0, 2)]);
        let (pairs, _) = near_miss_candidates(&b.trace(), &NearMissConfig::default());
        assert_eq!(pairs.len(), 1);
        assert_eq!(pairs[0].kind, BugKind::UseAfterFree);
        assert_eq!(pairs[0].max_gap, SimTime::from_us(80));
    }

    #[test]
    fn same_thread_pairs_are_not_candidates() {
        let mut b = TB::new();
        b.ev(100, 0, "init", 0, AccessKind::Init, &[(0, 1)]);
        b.ev(150, 0, "use", 0, AccessKind::Use, &[(0, 1)]);
        let (pairs, _) = near_miss_candidates(&b.trace(), &NearMissConfig::default());
        assert!(pairs.is_empty());
    }

    #[test]
    fn different_objects_are_not_candidates() {
        let mut b = TB::new();
        b.ev(100, 0, "init", 0, AccessKind::Init, &[(0, 2)]);
        b.ev(150, 1, "use", 1, AccessKind::Use, &[(1, 1)]);
        let (pairs, _) = near_miss_candidates(&b.trace(), &NearMissConfig::default());
        assert!(pairs.is_empty());
    }

    #[test]
    fn gap_beyond_delta_is_not_a_near_miss() {
        let mut b = TB::new();
        b.ev(0, 0, "init", 0, AccessKind::Init, &[(0, 2)]);
        b.ev(200_000, 1, "use", 0, AccessKind::Use, &[(1, 1)]);
        let (pairs, _) = near_miss_candidates(&b.trace(), &NearMissConfig::default());
        assert!(pairs.is_empty());
    }

    #[test]
    fn ordered_clocks_are_pruned_unless_disabled() {
        let mut b = TB::new();
        // Parent inits pre-fork (clock {0:1}); child uses with {0:2, 1:1}:
        // ordered → pruned.
        b.ev(100, 0, "init", 0, AccessKind::Init, &[(0, 1)]);
        b.ev(150, 1, "use", 0, AccessKind::Use, &[(0, 2), (1, 1)]);
        let trace = b.trace();
        let (pairs, stats) = near_miss_candidates(&trace, &NearMissConfig::default());
        assert!(pairs.is_empty());
        assert_eq!(stats.pruned_ordered, 1);
        // Ablation: no parent-child analysis keeps the pair.
        let (pairs, _) = near_miss_candidates(
            &trace,
            &NearMissConfig {
                prune_ordered: false,
                ..NearMissConfig::default()
            },
        );
        assert_eq!(pairs.len(), 1);
    }

    #[test]
    fn repeated_observations_keep_max_gap() {
        let mut b = TB::new();
        b.ev(0, 0, "init", 0, AccessKind::Init, &[(0, 2)]);
        b.ev(30, 1, "use", 0, AccessKind::Use, &[(1, 1)]);
        b.ev(1_000, 0, "init", 1, AccessKind::Init, &[(0, 2)]);
        b.ev(1_090, 1, "use", 1, AccessKind::Use, &[(1, 1)]);
        let (pairs, _) = near_miss_candidates(&b.trace(), &NearMissConfig::default());
        assert_eq!(pairs.len(), 1);
        assert_eq!(pairs[0].observations, 2);
        assert_eq!(pairs[0].max_gap, SimTime::from_us(90));
    }

    #[test]
    fn reversed_kind_order_is_not_a_candidate() {
        // A use *before* an init (would already have crashed) and a dispose
        // before a use are not near-miss patterns.
        let mut b = TB::new();
        b.ev(100, 0, "dispose", 0, AccessKind::Dispose, &[(0, 2)]);
        b.ev(150, 1, "use", 0, AccessKind::Use, &[(1, 1)]);
        let (pairs, _) = near_miss_candidates(&b.trace(), &NearMissConfig::default());
        assert!(pairs.is_empty());
    }
}
