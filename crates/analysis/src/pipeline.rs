//! The fused single-pass analysis pipeline over the columnar trace index.
//!
//! The reference scanners ([`crate::candidates::near_miss_candidates`],
//! [`crate::interference::build_interference`],
//! [`crate::tsv::analyze_tsv_unindexed`]) each re-walk the whole event
//! vector and regroup it per object on the heap. This module replaces them
//! with one sweep over the shared [`TraceIndex`]:
//!
//! - the near-miss window scan is a **two-pointer sweep** over each
//!   object's contiguous, time-sorted column segment (the window frontier
//!   `j_hi` only moves forward, so every timestamp is compared O(1) times
//!   amortized);
//! - candidate aggregation happens in the same pass; interference
//!   observations are then gathered by a short second walk restricted to
//!   the *candidate* site pairs, so the observation heap is bounded by
//!   candidate activity instead of by window pairs;
//! - happens-before checks go through interned [`ClockId`] handles with a
//!   symmetric memo table, so each distinct snapshot pair is compared once
//!   instead of once per event pair;
//! - objects are sharded across a scoped thread pool (`jobs` workers over
//!   contiguous object-slot ranges) and shard outputs merge **in shard
//!   order** with commutative per-key folds (max gap, summed counts,
//!   first-shard representative object), so the resulting [`Plan`] is
//!   bit-identical for every `jobs` value.
//!
//! Equivalence with the reference scanners is pinned by
//! `tests/analysis_equivalence.rs` across every seeded bug workload.

use std::collections::{BTreeMap, HashMap, HashSet};
use std::ops::Range;

use waffle_mem::{AccessKind, ObjectId, SiteId};
use waffle_sim::{SimTime, ThreadId};
use waffle_trace::{ClassColumns, ClockId, ClockPool, TraceIndex};

use crate::analyzer::AnalyzerConfig;
use crate::candidates::{BugKind, CandidatePair, NearMissStats};
use crate::interference::InterferenceSet;
use crate::plan::Plan;
use crate::tsv::{TsvCandidate, TsvPlan};

/// Per-pair aggregate built during the sweep; becomes a [`CandidatePair`]
/// once shards are merged.
#[derive(Debug, Clone, Copy)]
pub(crate) struct CandAgg {
    /// Representative object: the first admitted observation in ascending
    /// object order within the shard (globally resolved by keeping the
    /// first shard's value on merge).
    obj: ObjectId,
    max_gap: SimTime,
    observations: u32,
}

/// Near-miss observations of one site pair: `(τ1, τ2, thread-of-ℓ2)`.
pub(crate) type PairObservations = Vec<(SimTime, SimTime, ThreadId)>;

/// The candidate-pair accumulator the shard merge folds into.
pub(crate) type PairMap = HashMap<(SiteId, SiteId, BugKind), CandAgg>;

/// The interference-observation accumulator.
pub(crate) type ObsMap = HashMap<(SiteId, SiteId), PairObservations>;

/// Delay-site executions grouped by thread, time-sorted before use.
pub(crate) type DelayExecs = HashMap<ThreadId, Vec<(SimTime, SiteId)>>;

/// Everything one shard's sweep produces. Interference observations are
/// deliberately *not* collected here: they are only needed for candidate
/// site pairs, which are unknown until every shard has merged, and
/// recording one per examined pair made the sweep's heap (and time) scale
/// with window pairs. [`collect_candidate_obs`] re-walks the columns for
/// just the candidate keys afterwards.
#[derive(Debug, Default)]
pub(crate) struct ShardOut {
    pairs: PairMap,
    window_pairs: u64,
    examined: u64,
    pruned_ordered: u64,
}

/// Memoized symmetric happens-before check over pooled clock handles.
///
/// `is_ordered` is symmetric (`Before`/`After` both order, `Equal` orders,
/// `Concurrent` does not), so the memo key is the normalized `(min, max)`
/// id pair; equal ids are ordered by definition.
///
/// The memo is a **direct-mapped table sized from the clock pool**, not a
/// growable map: on a clock-diverse trace the number of distinct snapshot
/// pairs inside δ windows is quadratic in events, and an unbounded memo
/// made analysis peak-heap scale with window pairs. A colliding entry
/// simply overwrites its slot — deterministic (the slot is a pure function
/// of the key) and always correct, because a miss only costs recomputing
/// the pure `order()` comparison.
pub(crate) struct OrderMemo<'p> {
    pool: &'p ClockPool,
    mask: u64,
    /// `(lo, hi, ordered)` keyed slots; `u32::MAX` ids mark an empty slot
    /// (unreachable as a real pair: equal ids short-circuit before lookup).
    slots: Vec<(u32, u32, bool)>,
}

impl<'p> OrderMemo<'p> {
    const EMPTY_SLOT: (u32, u32, bool) = (u32::MAX, u32::MAX, false);

    pub(crate) fn new(pool: &'p ClockPool) -> Self {
        let cap = Self::capacity_for(pool.len());
        Self {
            pool,
            mask: cap as u64 - 1,
            slots: vec![Self::EMPTY_SLOT; cap],
        }
    }

    /// Table size for a pool of `n` snapshots: ~16 slots per snapshot,
    /// power of two, clamped to [2¹⁰, 2¹⁸] (the ceiling bounds the memo at
    /// a few MB no matter how clock-diverse the trace is). The generous
    /// multiplier exists because the memo is keyed by snapshot *pairs*,
    /// whose diversity grows faster than the pool: a direct-mapped table
    /// sized near the key count thrashes (every collision recomputes a
    /// full clock comparison), and slots are 12 bytes.
    pub(crate) fn capacity_for(n: usize) -> usize {
        n.saturating_mul(16).next_power_of_two().clamp(1 << 10, 1 << 18)
    }

    fn ordered(&mut self, a: ClockId, b: ClockId) -> bool {
        if a == b {
            return true;
        }
        let (lo, hi) = if a <= b { (a.0, b.0) } else { (b.0, a.0) };
        // Fibonacci-style mix of both halves of the key; fixed constants
        // keep the slot assignment identical across runs and shards.
        let h = u64::from(lo).wrapping_mul(0x9E37_79B9_7F4A_7C15)
            ^ u64::from(hi).wrapping_mul(0xC2B2_AE3D_27D4_EB4F);
        let idx = ((h >> 16) & self.mask) as usize;
        let slot = &mut self.slots[idx];
        if slot.0 == lo && slot.1 == hi {
            return slot.2;
        }
        let v = self
            .pool
            .get(ClockId(lo))
            .order(self.pool.get(ClockId(hi)))
            .is_ordered();
        *slot = (lo, hi, v);
        v
    }
}

/// Splits `n` object slots into at most `jobs` contiguous, near-even
/// ranges. Deterministic in `(n, jobs)`.
pub(crate) fn shard_ranges(n: usize, jobs: usize) -> Vec<Range<usize>> {
    let jobs = jobs.max(1).min(n.max(1));
    if n == 0 {
        return Vec::new();
    }
    let base = n / jobs;
    let extra = n % jobs;
    let mut ranges = Vec::with_capacity(jobs);
    let mut start = 0;
    for s in 0..jobs {
        let len = base + usize::from(s < extra);
        if len == 0 {
            continue;
        }
        ranges.push(start..start + len);
        start += len;
    }
    ranges
}

/// Runs `f` over each shard, on a scoped thread pool when `jobs > 1`.
/// Results come back in shard order either way.
pub(crate) fn run_shards<T, F>(shards: Vec<Range<usize>>, jobs: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(Range<usize>) -> T + Sync,
{
    if jobs <= 1 || shards.len() <= 1 {
        return shards.into_iter().map(f).collect();
    }
    std::thread::scope(|scope| {
        let f = &f;
        let handles: Vec<_> = shards
            .into_iter()
            .map(|s| scope.spawn(move || f(s)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("analysis shard panicked"))
            .collect()
    })
}

/// Sweeps one shard (a contiguous range of object slots) of the MemOrder
/// columns: the fused candidate + interference-observation scan.
pub(crate) fn sweep_mem_shard(
    cols: &ClassColumns,
    pool: &ClockPool,
    slots: Range<usize>,
    delta: SimTime,
    prune_ordered: bool,
) -> ShardOut {
    sweep_mem_shard_from(cols, pool, slots, delta, prune_ordered, None)
}

/// [`sweep_mem_shard`] generalized for incremental absorption: when
/// `fresh_from` is given, `fresh_from[k]` is the offset *within slot `k`'s
/// segment* where this generation's fresh events begin (everything before
/// it is the carried δ-window tail of earlier generations), and only pairs
/// whose **later** event is fresh are counted. Each cross-generation pair
/// is therefore counted in exactly one absorb — the one where its later
/// event arrives — which is what makes the incremental fold byte-identical
/// to a batch sweep over the concatenated trace. `fresh_from = None` (or
/// all zeros) is the plain batch sweep.
pub(crate) fn sweep_mem_shard_from(
    cols: &ClassColumns,
    pool: &ClockPool,
    slots: Range<usize>,
    delta: SimTime,
    prune_ordered: bool,
    fresh_from: Option<&[u32]>,
) -> ShardOut {
    let mut out = ShardOut::default();
    let mut ord = OrderMemo::new(pool);
    for k in slots {
        let r = cols.range(k);
        let fresh = fresh_from.map_or(r.start, |f| r.start + f[k] as usize);
        // Two-pointer sweep: `j_hi` is the exclusive frontier of the δ
        // window for `i`. Timestamps ascend within the segment, so the
        // frontier never retreats as `i` advances.
        let mut j_hi = r.start;
        for i in r.clone() {
            if j_hi < i + 1 {
                j_hi = i + 1;
            }
            while j_hi < r.end && cols.times[j_hi].saturating_sub(cols.times[i]) < delta {
                j_hi += 1;
            }
            // Pairs whose later event predates the fresh region were
            // already counted by the absorb that brought that event in.
            let j_lo = (i + 1).max(fresh);
            out.window_pairs += j_hi.saturating_sub(j_lo) as u64;
            for j in j_lo..j_hi {
                if cols.threads[j] == cols.threads[i] {
                    continue;
                }
                let kind = match (cols.kinds[i], cols.kinds[j]) {
                    (AccessKind::Init, AccessKind::Use) => BugKind::UseBeforeInit,
                    (AccessKind::Use, AccessKind::Dispose) => BugKind::UseAfterFree,
                    _ => continue,
                };
                out.examined += 1;
                if prune_ordered && ord.ordered(cols.clocks[i], cols.clocks[j]) {
                    out.pruned_ordered += 1;
                    continue;
                }
                let gap = cols.times[j].saturating_sub(cols.times[i]);
                let entry = out
                    .pairs
                    .entry((cols.sites[i], cols.sites[j], kind))
                    .or_insert(CandAgg {
                        obj: cols.objects[k],
                        max_gap: SimTime::ZERO,
                        observations: 0,
                    });
                entry.max_gap = entry.max_gap.max(gap);
                entry.observations += 1;
            }
        }
    }
    out
}

/// Folds one shard's sweep output into the global accumulators. Every
/// per-key fold is commutative — max gap, summed observations, and a
/// **min** fold on the representative object. For the batch path (shards
/// merged in ascending object order) the min fold is identical to the
/// historical keep-first-seen rule, since the first shard to see a pair
/// holds its globally lowest object; making it an explicit min keeps the
/// fold order-robust for the incremental path, where a later generation
/// can introduce a lower-numbered object for an already-known pair.
pub(crate) fn merge_mem_out(out: ShardOut, stats: &mut NearMissStats, pairs: &mut PairMap) {
    stats.window_pairs += out.window_pairs;
    stats.examined += out.examined;
    stats.pruned_ordered += out.pruned_ordered;
    for (key, agg) in out.pairs {
        pairs
            .entry(key)
            .and_modify(|e| {
                e.obj = e.obj.min(agg.obj);
                e.max_gap = e.max_gap.max(agg.max_gap);
                e.observations += agg.observations;
            })
            .or_insert(agg);
    }
}

/// Converts the merged pair accumulator into the plan's sorted candidate
/// list.
pub(crate) fn candidates_from_pairs(pairs: PairMap) -> Vec<CandidatePair> {
    let mut candidates: Vec<CandidatePair> = pairs
        .into_iter()
        .map(|((delay_site, other_site, kind), agg)| CandidatePair {
            delay_site,
            other_site,
            kind,
            obj: agg.obj,
            max_gap: agg.max_gap,
            observations: agg.observations,
        })
        .collect();
    candidates.sort_by_key(|p| (p.delay_site, p.other_site, p.kind as u8));
    candidates
}

/// Re-walks the δ windows of `cols` recording interference observations
/// `(τ1, τ2, thread-of-ℓ2)` for the *candidate* site pairs only — the same
/// cross-thread, kind-matched pairs the sweep examined (including
/// clock-ordered ones: the reference interference scan does not prune by
/// clock), narrowed to the keys [`window_interference`] will actually
/// read. Keeping this out of the hot sweep bounds the observation heap by
/// candidate activity instead of by window pairs.
pub(crate) fn collect_candidate_obs(
    cols: &ClassColumns,
    delta: SimTime,
    cand_keys: &HashSet<(SiteId, SiteId)>,
    obs: &mut ObsMap,
) {
    // Only events at a candidate *delay* site can open an observation, so
    // everything else skips the pair walk — the frontier advance below
    // stays O(events) amortized either way.
    let first_sites: HashSet<SiteId> = cand_keys.iter().map(|&(l1, _)| l1).collect();
    for k in 0..cols.object_count() {
        let r = cols.range(k);
        let mut j_hi = r.start;
        for i in r.clone() {
            if j_hi < i + 1 {
                j_hi = i + 1;
            }
            while j_hi < r.end && cols.times[j_hi].saturating_sub(cols.times[i]) < delta {
                j_hi += 1;
            }
            if !first_sites.contains(&cols.sites[i]) {
                continue;
            }
            for j in (i + 1)..j_hi {
                if cols.threads[j] == cols.threads[i] {
                    continue;
                }
                match (cols.kinds[i], cols.kinds[j]) {
                    (AccessKind::Init, AccessKind::Use)
                    | (AccessKind::Use, AccessKind::Dispose) => {}
                    _ => continue,
                }
                if !cand_keys.contains(&(cols.sites[i], cols.sites[j])) {
                    continue;
                }
                obs.entry((cols.sites[i], cols.sites[j]))
                    .or_default()
                    .push((cols.times[i], cols.times[j], cols.threads[j]));
            }
        }
    }
}

/// The candidate pairs' site keys, the filter for observation collection.
pub(crate) fn candidate_keys(candidates: &[CandidatePair]) -> HashSet<(SiteId, SiteId)> {
    candidates
        .iter()
        .map(|c| (c.delay_site, c.other_site))
        .collect()
}

/// Collects delay-site executions (the interference pass's needle set)
/// from one stretch of column data into the per-thread accumulator.
pub(crate) fn collect_delay_execs(
    times: &[SimTime],
    threads: &[ThreadId],
    sites: &[SiteId],
    delay_sites: &HashSet<SiteId>,
    by_thread: &mut DelayExecs,
) {
    for i in 0..times.len() {
        if delay_sites.contains(&sites[i]) {
            by_thread
                .entry(threads[i])
                .or_default()
                .push((times[i], sites[i]));
        }
    }
}

/// Resolves the interference set from the sweep's observations: for each
/// observation `(τ1, τ2, thread-of-ℓ2)` of a *candidate* pair, every
/// delay-site execution by ℓ2's thread inside the strict window
/// `(τ1 − δ, τ2]` interferes with ℓ1. Per-thread execution lists are
/// sorted here, so collection order never matters.
pub(crate) fn window_interference(
    candidates: &[CandidatePair],
    obs: &ObsMap,
    by_thread: &mut DelayExecs,
    delta: SimTime,
) -> InterferenceSet {
    let mut set = InterferenceSet::new();
    let cand_keys = candidate_keys(candidates);
    for execs in by_thread.values_mut() {
        execs.sort_unstable();
    }
    for ((l1, l2), observations) in obs {
        if !cand_keys.contains(&(*l1, *l2)) {
            continue;
        }
        for &(t1, t2, thd2) in observations {
            let Some(execs) = by_thread.get(&thd2) else {
                continue;
            };
            // First execution strictly inside the look-behind: the strict
            // `< δ` boundary matches the reference builder and the
            // near-miss window convention.
            let start = execs.partition_point(|&(t, _)| t1.saturating_sub(t) >= delta);
            for &(t_star, l_star) in &execs[start..] {
                if t_star > t2 {
                    break;
                }
                set.insert(*l1, l_star);
            }
        }
    }
    set
}

/// The in-memory interference finalizer: one extra pass over the resident
/// columns for candidate observations and delay-site executions, then the
/// shared window resolution.
fn finalize_interference(
    cols: &ClassColumns,
    candidates: &[CandidatePair],
    delta: SimTime,
) -> InterferenceSet {
    let delay_sites: HashSet<SiteId> = candidates.iter().map(|c| c.delay_site).collect();
    if delay_sites.is_empty() {
        return InterferenceSet::new();
    }
    let mut obs = ObsMap::new();
    collect_candidate_obs(cols, delta, &candidate_keys(candidates), &mut obs);
    let mut by_thread = DelayExecs::new();
    collect_delay_execs(&cols.times, &cols.threads, &cols.sites, &delay_sites, &mut by_thread);
    window_interference(candidates, &obs, &mut by_thread, delta)
}

/// Analyzes an indexed preparation trace into a detection [`Plan`] using
/// the fused single-pass sweep, sharded across up to `jobs` threads.
///
/// Produces byte-identical plans to the reference scanners
/// ([`crate::analyze_unindexed`]) at every `jobs` value.
pub fn analyze_indexed(index: &TraceIndex<'_>, config: &AnalyzerConfig, jobs: usize) -> Plan {
    let cols = &index.mem;
    let pool = &index.trace.clocks;
    let shards = shard_ranges(cols.object_count(), jobs);
    let outs = run_shards(shards, jobs, |slots| {
        sweep_mem_shard(cols, pool, slots, config.delta, config.prune_parent_child)
    });

    // Deterministic merge: shard order is object order; per-key folds are
    // commutative except the representative object, which keeps the first
    // shard's value — the globally lowest-numbered admitted object, the
    // same representative the reference scanner picks.
    let mut stats = NearMissStats::default();
    let mut pairs = PairMap::new();
    for out in outs {
        merge_mem_out(out, &mut stats, &mut pairs);
    }
    let candidates = candidates_from_pairs(pairs);
    stats.admitted = candidates.len();

    let delay_len = crate::analyzer::delay_plan(&candidates, config);
    let interference = if config.interference_control {
        finalize_interference(cols, &candidates, config.delta)
    } else {
        InterferenceSet::new()
    };
    Plan {
        workload: index.trace.workload.clone(),
        candidates,
        delay_len,
        interference,
        delta: config.delta,
        stats,
        memory_model: config.memory,
    }
}

/// Sweeps one shard of the TSV columns.
pub(crate) fn sweep_tsv_shard(
    cols: &ClassColumns,
    slots: Range<usize>,
    delta: SimTime,
    default_window: SimTime,
) -> BTreeMap<(SiteId, SiteId), TsvCandidate> {
    sweep_tsv_shard_from(cols, slots, delta, default_window, None)
}

/// [`sweep_tsv_shard`] generalized for incremental absorption, with the
/// same `fresh_from` contract as [`sweep_mem_shard_from`]: only pairs
/// whose later event is fresh are recorded.
pub(crate) fn sweep_tsv_shard_from(
    cols: &ClassColumns,
    slots: Range<usize>,
    delta: SimTime,
    default_window: SimTime,
    fresh_from: Option<&[u32]>,
) -> BTreeMap<(SiteId, SiteId), TsvCandidate> {
    let mut seen: BTreeMap<(SiteId, SiteId), TsvCandidate> = BTreeMap::new();
    for k in slots {
        let r = cols.range(k);
        let fresh = fresh_from.map_or(r.start, |f| r.start + f[k] as usize);
        for i in r.clone() {
            for j in (i + 1).max(fresh)..r.end {
                let gap = cols.times[j].saturating_sub(cols.times[i]);
                if gap >= delta {
                    break;
                }
                if cols.threads[i] == cols.threads[j] {
                    continue;
                }
                let entry = seen
                    .entry((cols.sites[i], cols.sites[j]))
                    .or_insert_with(|| TsvCandidate {
                        delay_site: cols.sites[i],
                        other_site: cols.sites[j],
                        obj: cols.objects[k],
                        gap: SimTime::ZERO,
                        window: default_window,
                    });
                entry.gap = entry.gap.max(gap);
            }
        }
    }
    seen
}

/// Analyzes the indexed trace's TSV events into a [`TsvPlan`] with the
/// sharded sweep; byte-identical to [`crate::tsv::analyze_tsv_unindexed`]
/// at every `jobs` value.
pub fn analyze_tsv_indexed(
    index: &TraceIndex<'_>,
    delta: SimTime,
    default_window: SimTime,
    jobs: usize,
) -> TsvPlan {
    let cols = &index.tsv;
    let shards = shard_ranges(cols.object_count(), jobs);
    let outs = run_shards(shards, jobs, |slots| {
        sweep_tsv_shard(cols, slots, delta, default_window)
    });
    let mut seen: BTreeMap<(SiteId, SiteId), TsvCandidate> = BTreeMap::new();
    for shard in outs {
        merge_tsv_out(shard, &mut seen);
    }
    tsv_plan_from(index.trace.workload.clone(), seen)
}

/// Folds one TSV shard into the accumulator: gap is a max and the
/// representative object an explicit min — equal to the historical
/// first-seen rule under ascending-object merge order, but order-robust
/// for incremental generation folds (see [`merge_mem_out`]).
pub(crate) fn merge_tsv_out(
    shard: BTreeMap<(SiteId, SiteId), TsvCandidate>,
    seen: &mut BTreeMap<(SiteId, SiteId), TsvCandidate>,
) {
    for (key, cand) in shard {
        seen.entry(key)
            .and_modify(|e| {
                e.gap = e.gap.max(cand.gap);
                e.obj = e.obj.min(cand.obj);
            })
            .or_insert(cand);
    }
}

/// Assembles the final [`TsvPlan`] from the merged candidate accumulator.
pub(crate) fn tsv_plan_from(
    workload: String,
    seen: BTreeMap<(SiteId, SiteId), TsvCandidate>,
) -> TsvPlan {
    let candidates: Vec<TsvCandidate> = seen.into_values().collect();
    let mut delay_len = BTreeMap::new();
    for c in &candidates {
        let cur = delay_len.entry(c.delay_site).or_insert(SimTime::ZERO);
        *cur = (*cur).max(c.gap);
    }
    TsvPlan {
        workload,
        candidates,
        delay_len,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyzer::analyze_unindexed;
    use waffle_mem::SiteRegistry;
    use waffle_trace::{Trace, TraceEvent};
    use waffle_vclock::ClockSnapshot;

    struct TB {
        sites: SiteRegistry,
        events: Vec<TraceEvent>,
        clocks: ClockPool,
    }

    impl TB {
        fn new() -> Self {
            Self {
                sites: SiteRegistry::new(),
                events: Vec::new(),
                clocks: ClockPool::new(),
            }
        }

        fn ev(
            &mut self,
            t_us: u64,
            thread: u32,
            site: &str,
            obj: u32,
            kind: AccessKind,
            clock: &[(u32, u64)],
        ) -> &mut Self {
            let site = self.sites.register(site, kind);
            let clock = self.clocks.intern(ClockSnapshot::from_entries(
                clock.iter().map(|&(t, v)| (ThreadId(t), v)),
            ));
            self.events.push(TraceEvent {
                time: SimTime::from_us(t_us),
                thread: ThreadId(thread),
                site,
                obj: ObjectId(obj),
                kind,
                dyn_index: 0,
                clock,
            });
            self
        }

        fn trace(mut self) -> Trace {
            self.events.sort_by_key(|e| e.time);
            Trace {
                workload: "pipeline-test".into(),
                sites: self.sites,
                events: self.events,
                forks: vec![],
                clocks: self.clocks,
                end_time: SimTime::from_ms(10),
            }
        }
    }

    fn assert_plans_identical(trace: &Trace, config: &AnalyzerConfig, jobs: &[usize]) {
        let reference = analyze_unindexed(trace, config).to_json().unwrap();
        let index = TraceIndex::build(trace);
        for &j in jobs {
            let got = analyze_indexed(&index, config, j).to_json().unwrap();
            assert_eq!(got, reference, "plan drifted at jobs={j}");
        }
    }

    #[test]
    fn fused_sweep_matches_reference_scanners() {
        let mut b = TB::new();
        // Two candidate pairs across three objects, a pruned pair, and a
        // same-thread pair: exercises every branch of the sweep.
        b.ev(100, 0, "init", 0, AccessKind::Init, &[(0, 1)]);
        b.ev(150, 1, "use", 0, AccessKind::Use, &[(1, 1)]);
        b.ev(300, 1, "use", 1, AccessKind::Use, &[(1, 2)]);
        b.ev(380, 0, "dispose", 1, AccessKind::Dispose, &[(0, 2)]);
        b.ev(500, 0, "init", 2, AccessKind::Init, &[(0, 3)]);
        b.ev(520, 1, "use", 2, AccessKind::Use, &[(0, 3), (1, 4)]); // ordered → pruned
        b.ev(600, 0, "init", 2, AccessKind::Init, &[(0, 4)]);
        b.ev(610, 0, "use", 2, AccessKind::Use, &[(0, 4)]); // same thread
        let trace = b.trace();
        for config in [
            AnalyzerConfig::default(),
            AnalyzerConfig::default().without_parent_child(),
            AnalyzerConfig::default().without_variable_delay(),
            AnalyzerConfig::default().without_interference_control(),
        ] {
            assert_plans_identical(&trace, &config, &[1, 2, 3, 8]);
        }
    }

    /// Satellite regression: the representative object of a candidate pair
    /// is the lowest-numbered object with an admitted observation — not
    /// the earliest in time, and not dependent on `jobs`.
    #[test]
    fn obj_representative_is_pinned() {
        let mut b = TB::new();
        // The same site pair near-misses on object 7 early and object 3
        // late. Ascending object order scans 3 first.
        b.ev(100, 0, "init", 7, AccessKind::Init, &[(0, 1)]);
        b.ev(150, 1, "use", 7, AccessKind::Use, &[(1, 1)]);
        b.ev(5_000, 0, "init", 3, AccessKind::Init, &[(0, 2)]);
        b.ev(5_060, 1, "use", 3, AccessKind::Use, &[(1, 2)]);
        let trace = b.trace();
        let config = AnalyzerConfig::default();
        let index = TraceIndex::build(&trace);
        for jobs in [1, 2] {
            let plan = analyze_indexed(&index, &config, jobs);
            assert_eq!(plan.candidates.len(), 1);
            assert_eq!(
                plan.candidates[0].obj,
                ObjectId(3),
                "representative must be the lowest-numbered object (jobs={jobs})"
            );
            assert_eq!(plan.candidates[0].observations, 2);
        }
        assert_eq!(
            analyze_unindexed(&trace, &config).candidates[0].obj,
            ObjectId(3)
        );
    }

    #[test]
    fn window_pairs_count_matches_reference() {
        let mut b = TB::new();
        b.ev(0, 0, "init", 0, AccessKind::Init, &[(0, 1)]);
        b.ev(10, 0, "use-a", 0, AccessKind::Use, &[(0, 1)]);
        b.ev(20, 1, "use-b", 0, AccessKind::Use, &[(1, 1)]);
        b.ev(200_000, 1, "use-c", 0, AccessKind::Use, &[(1, 2)]);
        let trace = b.trace();
        let reference = analyze_unindexed(&trace, &AnalyzerConfig::default());
        let indexed = analyze_indexed(
            &TraceIndex::build(&trace),
            &AnalyzerConfig::default(),
            1,
        );
        assert_eq!(reference.stats.window_pairs, 3);
        assert_eq!(indexed.stats.window_pairs, 3);
        assert_eq!(indexed.stats.examined, reference.stats.examined);
    }

    #[test]
    fn tsv_sweep_matches_reference_at_any_jobs() {
        let mut b = TB::new();
        b.ev(1_000, 0, "A.call", 0, AccessKind::UnsafeApiCall, &[]);
        b.ev(31_000, 1, "B.call", 0, AccessKind::UnsafeApiCall, &[]);
        b.ev(40_000, 0, "A.call", 1, AccessKind::UnsafeApiCall, &[]);
        b.ev(41_000, 1, "B.call", 1, AccessKind::UnsafeApiCall, &[]);
        let trace = b.trace();
        let delta = SimTime::from_ms(100);
        let w = SimTime::from_us(500);
        let reference = crate::tsv::analyze_tsv_unindexed(&trace, delta, w)
            .to_json()
            .unwrap();
        let index = TraceIndex::build(&trace);
        for jobs in [1, 2, 8] {
            let got = analyze_tsv_indexed(&index, delta, w, jobs).to_json().unwrap();
            assert_eq!(got, reference, "TSV plan drifted at jobs={jobs}");
        }
    }

    #[test]
    fn shard_ranges_partition_exactly() {
        for n in 0..20 {
            for jobs in 1..6 {
                let ranges = shard_ranges(n, jobs);
                let mut next = 0;
                for r in &ranges {
                    assert_eq!(r.start, next);
                    assert!(!r.is_empty());
                    next = r.end;
                }
                assert_eq!(next, n);
            }
        }
    }
}
