//! The detection-run plan produced by the analyzer.

use std::collections::BTreeMap;

use serde::value::Value;
use serde::{Deserialize, Serialize};
use waffle_mem::SiteId;
use waffle_sim::{MemoryModel, SimTime};

use crate::candidates::{CandidatePair, NearMissStats};
use crate::interference::InterferenceSet;

/// Everything a detection run needs from the preparation run.
///
/// The real tool saves this (plus evolving delay probabilities) to disk
/// after analyzing the preparation trace and loads it to bootstrap each
/// detection run (§4.4, §5); [`Plan::to_json`]/[`Plan::from_json`] mirror
/// that persistence.
#[derive(Debug, Clone)]
pub struct Plan {
    /// Workload the plan was derived from.
    pub workload: String,
    /// The candidate set `S`.
    pub candidates: Vec<CandidatePair>,
    /// Planned delay length per delay location: `α · max-gap(ℓ)` (§4.3).
    pub delay_len: BTreeMap<SiteId, SimTime>,
    /// The interference set `I` (§4.4).
    pub interference: InterferenceSet,
    /// Near-miss window used during analysis.
    pub delta: SimTime,
    /// Scan statistics (reporting).
    pub stats: NearMissStats,
    /// Memory model the preparation run simulated: provenance for which
    /// model surfaced the candidate pairs. Omitted from JSON under `Sc`
    /// so pre-weak-memory plans (and their byte layouts) stay unchanged.
    pub memory_model: MemoryModel,
}

// Hand-written (de)serialization: the vendored `serde_derive` has no
// `#[serde(...)]` helper attributes, and `memory_model` must be absent
// from `Sc` plans (byte-identity with pre-weak-memory plan files) yet
// default to `Sc` when reading such a plan back.
impl Serialize for Plan {
    fn to_value(&self) -> Value {
        let mut fields = vec![
            (String::from("workload"), self.workload.to_value()),
            (String::from("candidates"), self.candidates.to_value()),
            (String::from("delay_len"), self.delay_len.to_value()),
            (String::from("interference"), self.interference.to_value()),
            (String::from("delta"), self.delta.to_value()),
            (String::from("stats"), self.stats.to_value()),
        ];
        if !self.memory_model.is_sc() {
            fields.push((String::from("memory_model"), self.memory_model.to_value()));
        }
        Value::Map(fields)
    }
}

impl Deserialize for Plan {
    fn from_value(v: &Value) -> Result<Self, serde::value::Error> {
        let m = v
            .as_map()
            .ok_or_else(|| serde::value::Error::expected("map", v))?;
        fn req<T: Deserialize>(
            m: &[(String, Value)],
            name: &'static str,
        ) -> Result<T, serde::value::Error> {
            match serde::value::get(m, name) {
                Some(x) => T::from_value(x),
                None => Deserialize::missing_field(name),
            }
        }
        Ok(Plan {
            workload: req(m, "workload")?,
            candidates: req(m, "candidates")?,
            delay_len: req(m, "delay_len")?,
            interference: req(m, "interference")?,
            delta: req(m, "delta")?,
            stats: req(m, "stats")?,
            memory_model: match serde::value::get(m, "memory_model") {
                Some(x) => MemoryModel::from_value(x)?,
                None => MemoryModel::Sc,
            },
        })
    }
}

impl Plan {
    /// Sites at which detection runs inject delays.
    pub fn delay_sites(&self) -> impl Iterator<Item = SiteId> + '_ {
        self.delay_len.keys().copied()
    }

    /// Planned delay length for `site` (zero when not a candidate).
    pub fn delay_for(&self, site: SiteId) -> SimTime {
        self.delay_len.get(&site).copied().unwrap_or(SimTime::ZERO)
    }

    /// Whether `site` is a delay-injection candidate.
    pub fn is_delay_site(&self, site: SiteId) -> bool {
        self.delay_len.contains_key(&site)
    }

    /// Serializes the plan (cross-run persistence format); errors propagate
    /// to the caller instead of aborting the campaign.
    pub fn to_json(&self) -> Result<String, serde_json::Error> {
        serde_json::to_string(self)
    }

    /// Parses a plan from JSON.
    pub fn from_json(s: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::candidates::BugKind;
    use waffle_mem::ObjectId;

    fn plan() -> Plan {
        let mut delay_len = BTreeMap::new();
        delay_len.insert(SiteId(0), SimTime::from_us(115));
        let mut interference = InterferenceSet::new();
        interference.insert(SiteId(0), SiteId(2));
        Plan {
            workload: "demo".into(),
            candidates: vec![CandidatePair {
                delay_site: SiteId(0),
                other_site: SiteId(1),
                kind: BugKind::UseBeforeInit,
                obj: ObjectId(0),
                max_gap: SimTime::from_us(100),
                observations: 1,
            }],
            delay_len,
            interference,
            delta: SimTime::from_ms(100),
            stats: NearMissStats::default(),
            memory_model: MemoryModel::Sc,
        }
    }

    #[test]
    fn plan_lookups_work() {
        let p = plan();
        assert!(p.is_delay_site(SiteId(0)));
        assert!(!p.is_delay_site(SiteId(1)));
        assert_eq!(p.delay_for(SiteId(0)), SimTime::from_us(115));
        assert_eq!(p.delay_for(SiteId(9)), SimTime::ZERO);
        assert_eq!(p.delay_sites().count(), 1);
    }

    #[test]
    fn plan_round_trips_through_json() {
        let p = plan();
        let back = Plan::from_json(&p.to_json().unwrap()).unwrap();
        assert_eq!(back.candidates, p.candidates);
        assert_eq!(back.delay_len, p.delay_len);
        assert_eq!(back.interference, p.interference);
        assert_eq!(back.delta, p.delta);
    }
}
