//! The interference set `I` (§4.4).

use std::collections::{BTreeSet, HashMap, HashSet};

use serde::{Deserialize, Serialize};
use waffle_mem::SiteId;
use waffle_sim::SimTime;
use waffle_trace::Trace;

use crate::candidates::CandidatePair;

/// Near-miss observations of one candidate pair: `(τ1, τ2, thread-of-ℓ2)`.
type PairObservations = Vec<(SimTime, SimTime, waffle_sim::ThreadId)>;

/// A symmetric set of candidate-location pairs whose concurrent delays
/// would cancel each other.
///
/// Built from the preparation trace: for a candidate pair `{ℓ1, ℓ2}`
/// observed at `(τ1, τ2)`, any *candidate location* ℓ\* exercised by ℓ2's
/// thread at a time within `(τ1 − δ, τ2]` is recorded as interfering with
/// ℓ1 — a delay at ℓ\* would block ℓ2's thread and cancel the delay at ℓ1
/// (Fig. 5). The look-behind boundary is *strict* (a gap of exactly δ is
/// outside the window), matching the strict `< δ` near-miss window used
/// for candidate identification in `candidates.rs`. Self-pairs `(ℓ, ℓ)`
/// are meaningful: they capture the "interfering dynamic instances"
/// pattern of Fig. 4b.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct InterferenceSet {
    pairs: BTreeSet<(SiteId, SiteId)>,
}

impl InterferenceSet {
    /// Creates an empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Normalizes a pair to `(min, max)`.
    fn norm(a: SiteId, b: SiteId) -> (SiteId, SiteId) {
        if a <= b {
            (a, b)
        } else {
            (b, a)
        }
    }

    /// Records that delays at `a` and `b` interfere.
    pub fn insert(&mut self, a: SiteId, b: SiteId) {
        self.pairs.insert(Self::norm(a, b));
    }

    /// Whether delays at `a` and `b` interfere.
    pub fn interferes(&self, a: SiteId, b: SiteId) -> bool {
        self.pairs.contains(&Self::norm(a, b))
    }

    /// Number of interfering pairs.
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }

    /// Iterates over normalized pairs.
    pub fn iter(&self) -> impl Iterator<Item = (SiteId, SiteId)> + '_ {
        self.pairs.iter().copied()
    }
}

/// Builds the interference set from a trace and the candidate set.
///
/// `delta` is the near-miss window (the look-behind before τ1 in Fig. 5).
///
/// This is the *reference* per-pass builder — it re-scans the whole trace
/// and regroups events per object, independently of the candidate scan.
/// Production paths go through [`crate::analyze`], whose fused pipeline
/// collects the same observations during the single indexed sweep; the
/// equivalence is pinned by `tests/analysis_equivalence.rs`.
pub fn build_interference(
    trace: &Trace,
    candidates: &[CandidatePair],
    delta: SimTime,
) -> InterferenceSet {
    let mut set = InterferenceSet::new();
    let delay_sites: HashSet<SiteId> = candidates.iter().map(|c| c.delay_site).collect();
    if delay_sites.is_empty() {
        return set;
    }
    // Re-discover the observation times of every candidate pair: for each
    // (obj, delay_site event e1, other_site event e2) within the window,
    // find candidate locations executed by e2's thread in [τ1 − δ, τ2].
    // Index events by thread for the window scan.
    let mut by_thread: HashMap<waffle_sim::ThreadId, Vec<(SimTime, SiteId)>> = HashMap::new();
    for e in trace.mem_order_events() {
        if delay_sites.contains(&e.site) {
            by_thread.entry(e.thread).or_default().push((e.time, e.site));
        }
    }
    let mut per_pair: HashMap<(SiteId, SiteId), PairObservations> = HashMap::new();
    {
        // Collect (τ1, τ2, thread-of-ℓ2) per candidate pair.
        let mut per_obj: std::collections::BTreeMap<
            waffle_mem::ObjectId,
            Vec<&waffle_trace::TraceEvent>,
        > = Default::default();
        for e in trace.mem_order_events() {
            per_obj.entry(e.obj).or_default().push(e);
        }
        let cand_keys: HashSet<(SiteId, SiteId)> = candidates
            .iter()
            .map(|c| (c.delay_site, c.other_site))
            .collect();
        for events in per_obj.values() {
            for (i, e1) in events.iter().enumerate() {
                for e2 in events[i + 1..].iter() {
                    if e2.time.saturating_sub(e1.time) >= delta {
                        break;
                    }
                    if e1.thread == e2.thread {
                        continue;
                    }
                    if cand_keys.contains(&(e1.site, e2.site)) {
                        per_pair
                            .entry((e1.site, e2.site))
                            .or_default()
                            .push((e1.time, e2.time, e2.thread));
                    }
                }
            }
        }
    }
    for ((l1, _l2), observations) in per_pair {
        for (t1, t2, thd2) in observations {
            if let Some(execs) = by_thread.get(&thd2) {
                for &(t_star, l_star) in execs {
                    // Window is (τ1 − δ, τ2]: the look-behind boundary is
                    // strict so a location exactly δ before τ1 does not
                    // count, consistent with the strict `< δ` near-miss
                    // window used on the pair side and in candidates.rs.
                    if t1.saturating_sub(t_star) < delta && t_star <= t2 {
                        set.insert(l1, l_star);
                    }
                }
            }
        }
    }
    set
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_is_symmetric_and_deduplicated() {
        let mut s = InterferenceSet::new();
        s.insert(SiteId(3), SiteId(1));
        s.insert(SiteId(1), SiteId(3));
        assert_eq!(s.len(), 1);
        assert!(s.interferes(SiteId(1), SiteId(3)));
        assert!(s.interferes(SiteId(3), SiteId(1)));
        assert!(!s.interferes(SiteId(1), SiteId(2)));
    }

    #[test]
    fn self_pairs_are_representable() {
        let mut s = InterferenceSet::new();
        s.insert(SiteId(5), SiteId(5));
        assert!(s.interferes(SiteId(5), SiteId(5)));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn empty_set_reports_no_interference() {
        let s = InterferenceSet::new();
        assert!(s.is_empty());
        assert!(!s.interferes(SiteId(0), SiteId(1)));
    }

    /// The look-behind boundary of the `(τ1 − δ, τ2]` window is strict:
    /// a candidate location executed exactly δ before τ1 is outside, one
    /// microsecond later is inside. Mirrors the strict `< δ` near-miss
    /// window of candidate identification.
    #[test]
    fn lookback_boundary_is_strict_at_exactly_delta() {
        use crate::candidates::{BugKind, CandidatePair};
        use waffle_mem::{AccessKind, ObjectId, SiteRegistry};
        use waffle_sim::ThreadId;
        use waffle_trace::{ClockId, ClockPool, Trace, TraceEvent};

        let delta = SimTime::from_us(100);
        let mut sites = SiteRegistry::new();
        let l1 = sites.register("M.init:1", AccessKind::Init);
        let l2 = sites.register("W.use:2", AccessKind::Use);
        // Candidate locations on ℓ2's thread: one exactly δ before τ1
        // (outside the strict window), one 1µs inside it.
        let l_out = sites.register("W.out:3", AccessKind::Use);
        let l_in = sites.register("W.in:4", AccessKind::Use);

        let ev = |time_us, thread, site, obj, kind| TraceEvent {
            time: SimTime::from_us(time_us),
            thread: ThreadId(thread),
            site,
            obj: ObjectId(obj),
            kind,
            dyn_index: 0,
            clock: ClockId::EMPTY,
        };
        // τ1 = 1000, τ2 = 1050; ℓ* candidates at 900 (= τ1 − δ) and 901.
        let trace = Trace {
            workload: "boundary".into(),
            sites,
            events: vec![
                ev(900, 1, l_out, 1, AccessKind::Use),
                ev(901, 1, l_in, 1, AccessKind::Use),
                ev(1000, 0, l1, 0, AccessKind::Init),
                ev(1050, 1, l2, 0, AccessKind::Use),
            ],
            forks: vec![],
            clocks: ClockPool::new(),
            end_time: SimTime::from_us(1100),
        };
        let pair = |delay_site, other_site| CandidatePair {
            delay_site,
            other_site,
            kind: BugKind::UseBeforeInit,
            obj: ObjectId(0),
            max_gap: SimTime::from_us(50),
            observations: 1,
        };
        // ℓ_out / ℓ_in become delay sites via their own (never-observed)
        // candidate pairs, so they are eligible ℓ* locations.
        let candidates = vec![pair(l1, l2), pair(l_out, l2), pair(l_in, l2)];
        let set = build_interference(&trace, &candidates, delta);
        assert!(
            set.interferes(l1, l_in),
            "gap of δ−1 must be inside the window"
        );
        assert!(
            !set.interferes(l1, l_out),
            "gap of exactly δ must be outside the strict window"
        );
    }
}
