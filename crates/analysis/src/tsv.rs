//! Preparation-run analysis for thread-safety violations.
//!
//! An extension in the spirit of the paper's conclusion (§8): applying
//! Waffle's resource-conscious design — one delay-free run, then planned,
//! measured injection — to the *atomicity-violation* timing condition of
//! Fig. 2. Unlike MemOrder bugs (delay > gap, open-ended), a TSV needs the
//! delay to land in a window: `gap − w₂ < delay < gap + w₁` for execution
//! windows of lengths w₁ (the delayed call) and w₂ (the other call). The
//! analyzer therefore plans the *centre* of the window (the observed gap
//! itself) rather than `α · gap`.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};
use waffle_mem::{ObjectId, SiteId};
use waffle_sim::SimTime;
use waffle_trace::Trace;

/// A planned thread-safety-violation candidate: delay the *earlier* call
/// by ~`gap` so its window slides onto the later call's.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TsvCandidate {
    /// The call to delay (the earlier one in the preparation run).
    pub delay_site: SiteId,
    /// The call to collide with.
    pub other_site: SiteId,
    /// Object both calls touch.
    pub obj: ObjectId,
    /// Observed start-to-start gap (the planned delay).
    pub gap: SimTime,
    /// Observed execution-window length of the delayed call (tolerance).
    pub window: SimTime,
}

/// The TSV detection plan: candidates plus per-site planned delays.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct TsvPlan {
    /// Workload the plan was derived from.
    pub workload: String,
    /// Candidate pairs, deterministic order.
    pub candidates: Vec<TsvCandidate>,
    /// Planned delay per delay site (the largest gap among its pairs).
    pub delay_len: BTreeMap<SiteId, SimTime>,
}

impl TsvPlan {
    /// Planned delay for `site` (zero when not a candidate).
    pub fn delay_for(&self, site: SiteId) -> SimTime {
        self.delay_len.get(&site).copied().unwrap_or(SimTime::ZERO)
    }

    /// Whether `site` is a delay location.
    pub fn is_delay_site(&self, site: SiteId) -> bool {
        self.delay_len.contains_key(&site)
    }

    /// Serializes the plan (same persistence format as [`crate::Plan`]).
    pub fn to_json(&self) -> Result<String, serde_json::Error> {
        serde_json::to_string(self)
    }

    /// Parses a plan from JSON.
    pub fn from_json(s: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(s)
    }
}

/// Analyzes a preparation trace for TSV candidates within `delta`.
///
/// Two thread-unsafe API calls on the same object from different threads
/// within the near-miss window form a candidate; the earlier call is the
/// delay location. Call windows are estimated from consecutive same-site
/// event spacing when available, defaulting to `default_window`.
///
/// Builds the columnar [`waffle_trace::TraceIndex`] and runs the indexed
/// sweep ([`crate::pipeline::analyze_tsv_indexed`]); callers that already
/// hold an index should use the indexed entry point directly to avoid
/// rebuilding it.
pub fn analyze_tsv(trace: &Trace, delta: SimTime, default_window: SimTime) -> TsvPlan {
    crate::pipeline::analyze_tsv_indexed(&trace.index(), delta, default_window, 1)
}

/// Reference per-pass TSV scanner: regroups the trace's TSV events per
/// object on the heap and scans the groups. Kept as the semantic spec the
/// indexed sweep is equivalence-tested against (`tests/analysis_equivalence.rs`).
pub fn analyze_tsv_unindexed(trace: &Trace, delta: SimTime, default_window: SimTime) -> TsvPlan {
    let mut per_obj: BTreeMap<ObjectId, Vec<&waffle_trace::TraceEvent>> = BTreeMap::new();
    for e in trace.tsv_events() {
        per_obj.entry(e.obj).or_default().push(e);
    }
    let mut seen: BTreeMap<(SiteId, SiteId), TsvCandidate> = BTreeMap::new();
    for events in per_obj.values() {
        for (i, e1) in events.iter().enumerate() {
            for e2 in events[i + 1..].iter() {
                let gap = e2.time.saturating_sub(e1.time);
                if gap >= delta {
                    break;
                }
                if e1.thread == e2.thread {
                    continue;
                }
                let entry = seen
                    .entry((e1.site, e2.site))
                    .or_insert_with(|| TsvCandidate {
                        delay_site: e1.site,
                        other_site: e2.site,
                        obj: e1.obj,
                        gap: SimTime::ZERO,
                        window: default_window,
                    });
                entry.gap = entry.gap.max(gap);
            }
        }
    }
    let candidates: Vec<TsvCandidate> = seen.into_values().collect();
    let mut delay_len = BTreeMap::new();
    for c in &candidates {
        let cur = delay_len.entry(c.delay_site).or_insert(SimTime::ZERO);
        *cur = (*cur).max(c.gap);
    }
    TsvPlan {
        workload: trace.workload.clone(),
        candidates,
        delay_len,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use waffle_mem::{AccessKind, SiteRegistry};
    use waffle_sim::ThreadId;
    use waffle_trace::{ClockId, ClockPool, TraceEvent};

    fn trace() -> Trace {
        let mut sites = SiteRegistry::new();
        let a = sites.register("A.call", AccessKind::UnsafeApiCall);
        let b = sites.register("B.call", AccessKind::UnsafeApiCall);
        let mk = |t_us: u64, thread: u32, site| TraceEvent {
            time: SimTime::from_us(t_us),
            thread: ThreadId(thread),
            site,
            obj: ObjectId(0),
            kind: AccessKind::UnsafeApiCall,
            dyn_index: 0,
            clock: ClockId::EMPTY,
        };
        Trace {
            workload: "tsv".into(),
            sites,
            events: vec![mk(1_000, 0, a), mk(31_000, 1, b)],
            forks: vec![],
            clocks: ClockPool::new(),
            end_time: SimTime::from_ms(1),
        }
    }

    #[test]
    fn near_missing_calls_become_candidates_with_gap_delays() {
        let plan = analyze_tsv(&trace(), SimTime::from_ms(100), SimTime::from_us(500));
        assert_eq!(plan.candidates.len(), 1);
        let c = &plan.candidates[0];
        assert_eq!(c.gap, SimTime::from_us(30_000));
        assert_eq!(plan.delay_for(c.delay_site), SimTime::from_us(30_000));
        assert!(plan.is_delay_site(c.delay_site));
        assert!(!plan.is_delay_site(c.other_site));
    }

    #[test]
    fn same_thread_calls_are_not_candidates() {
        let mut t = trace();
        for e in &mut t.events {
            e.thread = ThreadId(0);
        }
        let plan = analyze_tsv(&t, SimTime::from_ms(100), SimTime::from_us(500));
        assert!(plan.candidates.is_empty());
    }
}
