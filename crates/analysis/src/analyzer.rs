//! The end-to-end trace analyzer.

use std::collections::BTreeMap;

use waffle_mem::SiteId;
use waffle_sim::{MemoryModel, SimTime};
use waffle_trace::Trace;

use crate::candidates::{near_miss_candidates, NearMissConfig};
use crate::interference::{build_interference, InterferenceSet};
use crate::plan::Plan;

/// Analyzer configuration; the defaults are the paper's settings.
#[derive(Debug, Clone, Copy)]
pub struct AnalyzerConfig {
    /// Near-miss window δ (default 100 ms, §6.1).
    pub delta: SimTime,
    /// Delay-length factor α as a rational `alpha_num / alpha_den`
    /// (default 1.15, §4.3).
    pub alpha_num: u64,
    /// Denominator of α.
    pub alpha_den: u64,
    /// Prune candidates ordered by fork-edge happens-before (§4.1).
    /// Disabled by the "no parent-child analysis" ablation.
    pub prune_parent_child: bool,
    /// Compute per-location delay lengths (§4.3). When disabled (the "no
    /// custom delay length" ablation), every candidate gets `fixed_delay`.
    pub variable_delay: bool,
    /// Delay length used when `variable_delay` is off (default 100 ms, the
    /// TSVD/WaffleBasic setting).
    pub fixed_delay: SimTime,
    /// Build the interference set (§4.4). When disabled (the "no
    /// interference control" ablation), `I` is empty.
    pub interference_control: bool,
    /// Memory model the preparation run was simulated under; stamped into
    /// the plan as provenance so reports can say which model surfaced each
    /// candidate pair. Analysis itself is model-agnostic — the trace
    /// already reflects what each thread observed.
    pub memory: MemoryModel,
}

impl Default for AnalyzerConfig {
    fn default() -> Self {
        Self {
            delta: SimTime::from_ms(100),
            alpha_num: 115,
            alpha_den: 100,
            prune_parent_child: true,
            variable_delay: true,
            fixed_delay: SimTime::from_ms(100),
            interference_control: true,
            memory: MemoryModel::Sc,
        }
    }
}

impl AnalyzerConfig {
    /// The "no parent-child analysis" ablation (Table 7 row 1).
    pub fn without_parent_child(mut self) -> Self {
        self.prune_parent_child = false;
        self
    }

    /// The "no custom delay length" ablation (Table 7 row 3).
    pub fn without_variable_delay(mut self) -> Self {
        self.variable_delay = false;
        self
    }

    /// The "no interference control" ablation (Table 7 row 4).
    pub fn without_interference_control(mut self) -> Self {
        self.interference_control = false;
        self
    }

    /// Tags plans with the memory model the preparation run simulated.
    pub fn with_memory(mut self, memory: MemoryModel) -> Self {
        self.memory = memory;
        self
    }
}

/// Per-location delay lengths (§4.3): the largest gap across the pairs
/// involving each delay site, scaled by α; or the fixed length under the
/// "no custom delay length" ablation. Shared by the fused pipeline and the
/// reference scanner so both plans agree byte-for-byte.
pub(crate) fn delay_plan(
    candidates: &[crate::candidates::CandidatePair],
    config: &AnalyzerConfig,
) -> BTreeMap<SiteId, SimTime> {
    let mut delay_len: BTreeMap<SiteId, SimTime> = BTreeMap::new();
    for c in candidates {
        let planned = if config.variable_delay {
            c.max_gap.scale(config.alpha_num, config.alpha_den)
        } else {
            config.fixed_delay
        };
        let cur = delay_len.entry(c.delay_site).or_insert(SimTime::ZERO);
        *cur = (*cur).max(planned);
    }
    delay_len
}

/// Analyzes a preparation trace into a detection [`Plan`].
///
/// Builds the columnar [`waffle_trace::TraceIndex`] and runs the fused
/// single-pass pipeline sequentially. Use [`analyze_jobs`] to shard the
/// sweep across threads, or [`crate::pipeline::analyze_indexed`] directly
/// when an index is already in hand.
pub fn analyze(trace: &Trace, config: &AnalyzerConfig) -> Plan {
    analyze_jobs(trace, config, 1)
}

/// [`analyze`] with the near-miss sweep sharded across up to `jobs` worker
/// threads (objects are partitioned into contiguous slot ranges). The plan
/// is bit-identical for every `jobs` value — shard outputs merge in shard
/// order with commutative per-key folds — which
/// `tests/analysis_equivalence.rs` pins against the reference scanners.
pub fn analyze_jobs(trace: &Trace, config: &AnalyzerConfig, jobs: usize) -> Plan {
    let index = waffle_trace::TraceIndex::build(trace);
    crate::pipeline::analyze_indexed(&index, config, jobs)
}

/// Reference composition of the per-pass scanners: the near-miss candidate
/// scan ([`near_miss_candidates`]) followed by a separate whole-trace
/// interference scan ([`build_interference`]). Kept as the semantic spec
/// the fused pipeline is equivalence-tested against; production paths go
/// through [`analyze`]/[`analyze_jobs`].
pub fn analyze_unindexed(trace: &Trace, config: &AnalyzerConfig) -> Plan {
    let (candidates, stats) = near_miss_candidates(
        trace,
        &NearMissConfig {
            delta: config.delta,
            prune_ordered: config.prune_parent_child,
        },
    );
    let delay_len = delay_plan(&candidates, config);
    let interference = if config.interference_control {
        build_interference(trace, &candidates, config.delta)
    } else {
        InterferenceSet::new()
    };
    Plan {
        workload: trace.workload.clone(),
        candidates,
        delay_len,
        interference,
        delta: config.delta,
        stats,
        memory_model: config.memory,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use waffle_sim::{SimConfig, Simulator, WorkloadBuilder};
    use waffle_trace::TraceRecorder;

    /// Trace the Fig. 4a shape: main inits then disposes; a sibling handler
    /// uses the object in between. Yields both a UBI and a UAF candidate on
    /// the same object, and the two delay sites interfere.
    fn fig4a_trace() -> Trace {
        let mut b = WorkloadBuilder::new("fig4a");
        let lstnr = b.object("lstnr");
        let started = b.event("started");
        let handler = b.script("handler", move |s| {
            s.wait(started)
                .compute(SimTime::from_us(300))
                .use_(lstnr, "OnEventWritten:8", SimTime::from_us(10));
        });
        let main = b.script("main", move |s| {
            s.fork(handler)
                .signal(started)
                .compute(SimTime::from_us(100))
                .init(lstnr, "DiagnosticsLstnr.ctor:2", SimTime::from_us(20))
                .compute(SimTime::from_us(400))
                .dispose(lstnr, "Dispose:5", SimTime::from_us(10))
                .join_children();
        });
        b.main(main);
        let w = b.build();
        let mut rec = TraceRecorder::with_overhead(&w, SimTime::ZERO);
        let _ = Simulator::run(&w, SimConfig::with_seed(0).deterministic(), &mut rec);
        rec.into_trace()
    }

    #[test]
    fn analyzer_finds_both_fig4a_candidates() {
        let trace = fig4a_trace();
        let plan = analyze(&trace, &AnalyzerConfig::default());
        let kinds: Vec<_> = plan.candidates.iter().map(|c| c.kind).collect();
        assert!(kinds.contains(&crate::candidates::BugKind::UseBeforeInit));
        assert!(kinds.contains(&crate::candidates::BugKind::UseAfterFree));
        assert_eq!(plan.candidates.len(), 2);
    }

    #[test]
    fn fig4a_delay_sites_interfere() {
        let trace = fig4a_trace();
        let plan = analyze(&trace, &AnalyzerConfig::default());
        let init_site = trace.sites.lookup("DiagnosticsLstnr.ctor:2").unwrap();
        let use_site = trace.sites.lookup("OnEventWritten:8").unwrap();
        assert!(
            plan.interference.interferes(init_site, use_site),
            "the UBI delay site and the UAF delay site must interfere (Fig. 4a)"
        );
    }

    #[test]
    fn variable_delay_scales_gap_by_alpha() {
        let trace = fig4a_trace();
        let plan = analyze(&trace, &AnalyzerConfig::default());
        let init_site = trace.sites.lookup("DiagnosticsLstnr.ctor:2").unwrap();
        let c = plan
            .candidates
            .iter()
            .find(|c| c.delay_site == init_site)
            .unwrap();
        assert_eq!(plan.delay_for(init_site), c.max_gap.scale(115, 100));
        // The planned delay is far below the fixed 100ms the basic tool uses.
        assert!(plan.delay_for(init_site) < SimTime::from_ms(100));
    }

    #[test]
    fn fixed_delay_ablation_uses_100ms_everywhere() {
        let trace = fig4a_trace();
        let plan = analyze(
            &trace,
            &AnalyzerConfig::default().without_variable_delay(),
        );
        for site in plan.delay_sites().collect::<Vec<_>>() {
            assert_eq!(plan.delay_for(site), SimTime::from_ms(100));
        }
    }

    #[test]
    fn interference_ablation_empties_the_set() {
        let trace = fig4a_trace();
        let plan = analyze(
            &trace,
            &AnalyzerConfig::default().without_interference_control(),
        );
        assert!(plan.interference.is_empty());
    }

    #[test]
    fn parent_child_pruning_removes_fork_ordered_pairs() {
        // Parent inits, then forks a child that uses immediately: ordered.
        let mut b = WorkloadBuilder::new("ordered");
        let o = b.object("o");
        let child = b.script("child", move |s| {
            s.use_(o, "C.use:1", SimTime::from_us(10));
        });
        let main = b.script("main", move |s| {
            s.init(o, "M.init:1", SimTime::from_us(10))
                .fork(child)
                .join_children();
        });
        b.main(main);
        let w = b.build();
        let mut rec = TraceRecorder::with_overhead(&w, SimTime::ZERO);
        let _ = Simulator::run(&w, SimConfig::with_seed(0).deterministic(), &mut rec);
        let trace = rec.into_trace();
        let plan = analyze(&trace, &AnalyzerConfig::default());
        assert!(plan.candidates.is_empty(), "fork-ordered pair must be pruned");
        assert_eq!(plan.stats.pruned_ordered, 1);
        // Without the pruning, the pair survives (the ablation's cost).
        let plan = analyze(&trace, &AnalyzerConfig::default().without_parent_child());
        assert_eq!(plan.candidates.len(), 1);
    }

    #[test]
    fn plan_is_reproducible_for_identical_traces() {
        let t1 = fig4a_trace();
        let t2 = fig4a_trace();
        let p1 = analyze(&t1, &AnalyzerConfig::default());
        let p2 = analyze(&t2, &AnalyzerConfig::default());
        assert_eq!(p1.to_json().unwrap(), p2.to_json().unwrap());
    }
}
