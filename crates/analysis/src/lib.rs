//! Waffle's trace analyzer (§4.1–§4.4, component 2 of §5).
//!
//! Given the delay-free preparation-run trace, the analyzer produces the
//! [`Plan`] that bootstraps detection runs:
//!
//! 1. **Candidate set `S`** ([`candidates`]): the near-miss heuristic over
//!    MemOrder event pairs — an init (use) at ℓ1 followed within the
//!    near-miss window δ by a use (dispose) at ℓ2 on the same object from a
//!    different thread — minus pairs whose vector clocks are ordered
//!    (parent–child pruning, §4.1).
//! 2. **Per-location delay lengths** (§4.3): `len(ℓ1) = max gap` over the
//!    candidate pairs involving ℓ1; detection runs inject `α · len(ℓ1)`
//!    (α = 1.15).
//! 3. **Interference set `I`** ([`interference`], §4.4): pairs of candidate
//!    locations whose concurrent delays would cancel — for each candidate
//!    pair {ℓ1, ℓ2}, any candidate location ℓ* exercised by ℓ2's thread
//!    within `[τ1 − δ, τ2]` interferes with ℓ1.
//!
//! The resulting plan is serializable: the real tool writes it to disk
//! after the preparation run and loads it in every detection run.
//!
//! Production analysis runs as one fused pass over the columnar
//! [`waffle_trace::TraceIndex`] ([`pipeline`]), optionally sharded across
//! threads ([`analyze_jobs`]) with a deterministic merge; the per-pass
//! scanners above survive as the reference semantics the pipeline is
//! equivalence-tested against.
//!
//! # Examples
//!
//! ```
//! use waffle_analysis::{analyze, AnalyzerConfig};
//! use waffle_sim::time::{ms, us};
//! use waffle_sim::{SimConfig, Simulator, WorkloadBuilder};
//! use waffle_trace::TraceRecorder;
//!
//! // A use racing a disposal 10 ms later.
//! let mut b = WorkloadBuilder::new("doc.analysis");
//! let o = b.object("o");
//! let started = b.event("s");
//! let worker = b.script("worker", move |s| {
//!     s.wait(started).pad(ms(2)).use_(o, "W.use:1", us(30));
//! });
//! let main = b.script("main", move |s| {
//!     s.init(o, "M.init:1", us(30))
//!         .fork(worker)
//!         .signal(started)
//!         .pad(ms(12))
//!         .dispose(o, "M.dispose:9", us(30))
//!         .join_children();
//! });
//! b.main(main);
//! let w = b.build();
//!
//! let mut rec = TraceRecorder::new(&w);
//! let _ = Simulator::run(&w, SimConfig::with_seed(0), &mut rec);
//! let plan = analyze(&rec.into_trace(), &AnalyzerConfig::default());
//! // One use-after-free candidate, delayed by α·gap at the use.
//! assert_eq!(plan.candidates.len(), 1);
//! let c = &plan.candidates[0];
//! assert!(plan.delay_for(c.delay_site) > c.max_gap);
//! ```

pub mod analyzer;
pub mod candidates;
pub mod incremental;
pub mod interference;
pub mod ooc;
pub mod pipeline;
pub mod plan;
pub mod repair;
pub mod tsv;

pub use analyzer::{analyze, analyze_jobs, analyze_unindexed, AnalyzerConfig};
pub use candidates::{BugKind, CandidatePair};
pub use incremental::{IncrementalAnalysis, IncrementalStats};
pub use interference::InterferenceSet;
pub use ooc::{analyze_segments, analyze_tsv_segments, ooc_stats, OocStats, DEFAULT_RESIDENT_BYTES};
pub use pipeline::{analyze_indexed, analyze_tsv_indexed};
pub use plan::Plan;
pub use repair::{enumerate_candidates, synthesize, Certification, RepairReport};
pub use tsv::{analyze_tsv, analyze_tsv_unindexed, TsvCandidate, TsvPlan};
