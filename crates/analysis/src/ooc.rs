//! Out-of-core analysis: the fused sweep over an on-disk segment stream.
//!
//! [`analyze_segments`] produces the same [`Plan`] as
//! [`crate::analyze_jobs`] — byte-identical at any `jobs` value — without
//! ever holding the full event columns. Only two things stay resident for
//! the whole run, mirroring the partial-order-BMC observation that the
//! *ordering structure*, not the event mass, is what analysis needs hot:
//!
//! - the interned [`ClockPool`](waffle_trace::ClockPool) (read once from
//!   the segment file's footer catalog), and
//! - the per-pair accumulators (candidates and stats), whose size is
//!   bounded by distinct site pairs, not events.
//!
//! Event columns stream through a **resident-bytes budget**: object
//! segments are loaded in ascending object order until the next segment
//! would overflow the budget, the batch is swept (sharded across `jobs`
//! exactly like the in-memory path), merged, and dropped. The shard merge
//! was built for determinism across arbitrary contiguous partitions — max
//! and sum folds plus a first-seen representative resolved by ascending
//! object order — so batch boundaries are as invisible to the output as
//! shard boundaries are.
//!
//! Interference resolution needs the candidate pairs' observations and
//! delay-site executions, and the candidates are only known once every
//! batch has merged. Rather than buffer either during the sweep, the
//! stream is replayed a second time after the candidate merge, collecting
//! just the candidate-pair observations and delay-site executions — both
//! bounded by how often candidate sites run, typically a sliver of the
//! trace.

use std::collections::HashSet;
use std::io;

use waffle_mem::SiteId;
use waffle_sim::SimTime;
use waffle_trace::{ClassColumns, SegmentClass, SegmentColumns, SegmentReader};

use crate::analyzer::AnalyzerConfig;
use crate::candidates::NearMissStats;
use crate::interference::InterferenceSet;
use crate::pipeline::{
    candidate_keys, candidates_from_pairs, collect_candidate_obs, collect_delay_execs,
    merge_mem_out, merge_tsv_out, run_shards, shard_ranges, sweep_mem_shard, sweep_tsv_shard,
    tsv_plan_from, window_interference, DelayExecs, ObsMap, PairMap,
};
use crate::plan::Plan;
use crate::tsv::TsvPlan;

/// Default resident budget for streamed columns: 64 MiB, far below what a
/// 10M-event trace's columns occupy but generous enough that small traces
/// still land in a single batch.
pub const DEFAULT_RESIDENT_BYTES: u64 = 64 << 20;

/// Yields `[start, end)` segment-index batches whose summed on-disk sizes
/// respect `budget` (every batch holds at least one segment, so a single
/// oversized segment still streams).
fn budget_batches(sizes: &[u64], budget: u64) -> Vec<std::ops::Range<usize>> {
    let mut batches = Vec::new();
    let mut k = 0;
    while k < sizes.len() {
        let mut end = k + 1;
        let mut total = sizes[k];
        while end < sizes.len() && total + sizes[end] <= budget {
            total += sizes[end];
            end += 1;
        }
        batches.push(k..end);
        k = end;
    }
    batches
}

/// Loads segments `[range)` of `class` into one batch-local
/// [`ClassColumns`] (CSR offsets are batch-relative; `objects` keeps the
/// global ascending order the merge relies on).
fn load_batch(
    reader: &mut SegmentReader,
    class: SegmentClass,
    range: std::ops::Range<usize>,
) -> io::Result<ClassColumns> {
    let metas: Vec<_> = reader.catalog().class(class)[range.clone()].to_vec();
    let total: usize = metas.iter().map(|m| m.events as usize).sum();
    let mut cols = ClassColumns {
        times: Vec::with_capacity(total),
        threads: Vec::with_capacity(total),
        sites: Vec::with_capacity(total),
        objs: Vec::with_capacity(total),
        kinds: Vec::with_capacity(total),
        clocks: Vec::with_capacity(total),
        objects: Vec::with_capacity(metas.len()),
        offsets: Vec::with_capacity(metas.len() + 1),
    };
    cols.offsets.push(0);
    for (meta, k) in metas.iter().zip(range) {
        let mut seg: SegmentColumns = reader.load(class, k)?;
        cols.objs.extend(std::iter::repeat_n(meta.object, seg.len()));
        cols.times.append(&mut seg.times);
        cols.threads.append(&mut seg.threads);
        cols.sites.append(&mut seg.sites);
        cols.kinds.append(&mut seg.kinds);
        cols.clocks.append(&mut seg.clocks);
        cols.objects.push(meta.object);
        cols.offsets.push(cols.times.len() as u32);
    }
    Ok(cols)
}

/// Analyzes a segment stream into a detection [`Plan`] under a resident
/// budget of `resident_bytes` for streamed event columns.
///
/// Byte-identical to [`crate::analyze_jobs`] on the same trace for every
/// `jobs` and every budget (equivalence pinned across all seeded bugs by
/// `tests/analysis_equivalence.rs`).
pub fn analyze_segments(
    reader: &mut SegmentReader,
    config: &AnalyzerConfig,
    jobs: usize,
    resident_bytes: u64,
) -> io::Result<Plan> {
    let pool = reader.clocks().clone();
    let workload = reader.catalog().workload.clone();
    let sizes: Vec<u64> = reader
        .catalog()
        .class(SegmentClass::MemOrder)
        .iter()
        .map(|m| m.bytes)
        .collect();
    let mut stats = NearMissStats::default();
    let mut pairs = PairMap::new();
    let batches = budget_batches(&sizes, resident_bytes);
    for batch in batches.iter().cloned() {
        let cols = load_batch(reader, SegmentClass::MemOrder, batch)?;
        let shards = shard_ranges(cols.object_count(), jobs);
        let outs = run_shards(shards, jobs, |slots| {
            sweep_mem_shard(&cols, &pool, slots, config.delta, config.prune_parent_child)
        });
        for out in outs {
            merge_mem_out(out, &mut stats, &mut pairs);
        }
    }
    let candidates = candidates_from_pairs(pairs);
    stats.admitted = candidates.len();
    let delay_len = crate::analyzer::delay_plan(&candidates, config);

    let interference = if config.interference_control {
        stream_interference(reader, &candidates, config.delta, resident_bytes)?
    } else {
        InterferenceSet::new()
    };

    Ok(Plan {
        workload,
        candidates,
        delay_len,
        interference,
        delta: config.delta,
        stats,
        memory_model: config.memory,
    })
}

/// The streaming interference pass: re-walks the MemOrder segment stream
/// under the resident budget, collecting only candidate-pair observations
/// and delay-site executions, then resolves the windows. Shared by
/// [`analyze_segments`] and the incremental finish
/// ([`crate::incremental::IncrementalAnalysis::finish`]) — interference
/// windows cross seal boundaries, so the incremental path compacts its
/// generations first and streams the pass from the compacted file.
pub(crate) fn stream_interference(
    reader: &mut SegmentReader,
    candidates: &[crate::candidates::CandidatePair],
    delta: SimTime,
    resident_bytes: u64,
) -> io::Result<InterferenceSet> {
    let delay_sites: HashSet<SiteId> = candidates.iter().map(|c| c.delay_site).collect();
    let cand_keys = candidate_keys(candidates);
    let mut by_thread = DelayExecs::new();
    let mut obs = ObsMap::new();
    if !delay_sites.is_empty() {
        // Second streaming pass now that the needle set is known: only
        // candidate-pair observations and (time, thread, site) of
        // delay-site executions survive.
        let sizes: Vec<u64> = reader
            .catalog()
            .class(SegmentClass::MemOrder)
            .iter()
            .map(|m| m.bytes)
            .collect();
        for batch in budget_batches(&sizes, resident_bytes) {
            let cols = load_batch(reader, SegmentClass::MemOrder, batch)?;
            collect_candidate_obs(&cols, delta, &cand_keys, &mut obs);
            collect_delay_execs(
                &cols.times,
                &cols.threads,
                &cols.sites,
                &delay_sites,
                &mut by_thread,
            );
        }
    }
    Ok(window_interference(candidates, &obs, &mut by_thread, delta))
}

/// Analyzes a segment stream's TSV events into a [`TsvPlan`] under the
/// same resident budget; byte-identical to
/// [`crate::analyze_tsv_indexed`] at every `jobs` and budget.
pub fn analyze_tsv_segments(
    reader: &mut SegmentReader,
    delta: SimTime,
    default_window: SimTime,
    jobs: usize,
    resident_bytes: u64,
) -> io::Result<TsvPlan> {
    let workload = reader.catalog().workload.clone();
    let sizes: Vec<u64> = reader
        .catalog()
        .class(SegmentClass::Tsv)
        .iter()
        .map(|m| m.bytes)
        .collect();
    let mut seen = std::collections::BTreeMap::new();
    for batch in budget_batches(&sizes, resident_bytes) {
        let cols = load_batch(reader, SegmentClass::Tsv, batch)?;
        let shards = shard_ranges(cols.object_count(), jobs);
        let outs = run_shards(shards, jobs, |slots| {
            sweep_tsv_shard(&cols, slots, delta, default_window)
        });
        for out in outs {
            merge_tsv_out(out, &mut seen);
        }
    }
    Ok(tsv_plan_from(workload, seen))
}

/// Resident-footprint telemetry for one out-of-core run: how the stream
/// was batched under the budget (reported by `waffle analyze --spill`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OocStats {
    /// Batches the MemOrder segment stream split into.
    pub batches: usize,
    /// Largest single batch, in on-disk column bytes.
    pub max_batch_bytes: u64,
    /// Total segments streamed.
    pub segments: usize,
}

/// Computes the batching telemetry for `reader`'s MemOrder stream at the
/// given budget, without loading anything.
pub fn ooc_stats(reader: &SegmentReader, resident_bytes: u64) -> OocStats {
    let sizes: Vec<u64> = reader
        .catalog()
        .class(SegmentClass::MemOrder)
        .iter()
        .map(|m| m.bytes)
        .collect();
    let batches = budget_batches(&sizes, resident_bytes);
    OocStats {
        batches: batches.len(),
        max_batch_bytes: batches
            .iter()
            .map(|b| sizes[b.clone()].iter().sum())
            .max()
            .unwrap_or(0),
        segments: sizes.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batches_respect_the_budget_and_cover_everything() {
        let sizes = [10u64, 20, 30, 5, 100, 1];
        let batches = budget_batches(&sizes, 35);
        // [10,20] | [30,5] | [100] | [1]: oversized segments still stream.
        assert_eq!(batches, vec![0..2, 2..4, 4..5, 5..6]);
        for b in &batches {
            let total: u64 = sizes[b.clone()].iter().sum();
            assert!(b.len() == 1 || total <= 35);
        }
        assert_eq!(budget_batches(&[], 10), Vec::<std::ops::Range<usize>>::new());
        assert_eq!(budget_batches(&sizes, u64::MAX), vec![0..6]);
    }
}
