//! Incremental analysis: fold freshly sealed generations into a running
//! candidate set, byte-identical to a one-shot batch sweep.
//!
//! `waffle serve` seals a session's events into generation segment files
//! as they arrive. Re-running [`crate::analyze_jobs`] over everything
//! after every seal would make analysis cost quadratic in session length;
//! [`IncrementalAnalysis`] instead sweeps **fresh events only** per seal
//! and keeps three things between seals:
//!
//! - the per-pair accumulators (`PairMap` and the TSV candidate map),
//!   whose folds are commutative (max gap, summed observations, **min**
//!   representative object — see
//!   [`merge_mem_out`](crate::pipeline::merge_mem_out));
//! - the sweep stats;
//! - a per-object **δ-window tail**: the suffix of each object's events
//!   still within `δ` of the session's latest timestamp.
//!
//! At each [`absorb`](IncrementalAnalysis::absorb), the tail is prepended
//! to the generation's fresh columns and the generalized sweep
//! ([`sweep_mem_shard_from`](crate::pipeline::sweep_mem_shard_from))
//! counts only pairs whose *later* event is fresh. Session streams are
//! time-ordered, so any event that can still pair with a future event is
//! by definition within `δ` of the stream head — exactly the tail that
//! was kept. Each cross-seal pair is therefore examined exactly once, in
//! the absorb where its later event arrives, and the accumulated
//! candidates, gaps, observation counts, and window statistics are
//! byte-identical to a batch sweep over the concatenated trace (pinned at
//! jobs 1/2/8 across ≥3 seal boundaries by `tests/analysis_equivalence.rs`).
//!
//! Interference windows also cross seal boundaries, but the interference
//! pass needs the final candidate set, so there is nothing to fold early:
//! [`finish`](IncrementalAnalysis::finish) streams the standard
//! second pass (shared with [`crate::analyze_segments`]) over the
//! session's **compacted** segment file.

use std::collections::BTreeMap;
use std::io;

use waffle_mem::{AccessKind, ObjectId, SiteId};
use waffle_sim::{SimTime, ThreadId};
use waffle_trace::{ClassColumns, ClockId, ClockPool, SegmentReader};

use crate::analyzer::AnalyzerConfig;
use crate::candidates::NearMissStats;
use crate::interference::InterferenceSet;
use crate::ooc::stream_interference;
use crate::pipeline::{
    candidates_from_pairs, merge_mem_out, merge_tsv_out, run_shards, shard_ranges,
    sweep_mem_shard_from, sweep_tsv_shard_from, tsv_plan_from, PairMap,
};
use crate::plan::Plan;
use crate::tsv::{TsvCandidate, TsvPlan};

/// One object's carried δ-window suffix between seals.
#[derive(Debug, Default, Clone)]
struct Tail {
    times: Vec<SimTime>,
    threads: Vec<ThreadId>,
    sites: Vec<SiteId>,
    kinds: Vec<AccessKind>,
    clocks: Vec<ClockId>,
}

impl Tail {
    fn len(&self) -> usize {
        self.times.len()
    }
}

type TailMap = BTreeMap<ObjectId, Tail>;

/// Size snapshot of the incremental state (telemetry; all bounded by the
/// δ window and distinct site pairs, never by session length).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IncrementalStats {
    /// Distinct candidate site pairs accumulated so far.
    pub pairs: usize,
    /// Distinct TSV site pairs accumulated so far.
    pub tsv_pairs: usize,
    /// Events currently carried in MemOrder tails.
    pub mem_tail_events: usize,
    /// Events currently carried in TSV tails.
    pub tsv_tail_events: usize,
}

/// The running fold over a session's sealed generations.
#[derive(Debug)]
pub struct IncrementalAnalysis {
    config: AnalyzerConfig,
    default_window: SimTime,
    stats: NearMissStats,
    pairs: PairMap,
    tsv_seen: BTreeMap<(SiteId, SiteId), TsvCandidate>,
    mem_tails: TailMap,
    tsv_tails: TailMap,
}

/// The carried tails prepended to one generation's fresh columns, plus the
/// per-slot offsets where fresh events begin.
fn combine(tails: &TailMap, fresh: &ClassColumns) -> (ClassColumns, Vec<u32>) {
    let mut cols = ClassColumns::default();
    let mut fresh_from = Vec::with_capacity(fresh.object_count());
    cols.offsets.push(0);
    for k in 0..fresh.object_count() {
        let obj = fresh.objects[k];
        let tail_len = match tails.get(&obj) {
            Some(t) => {
                cols.times.extend_from_slice(&t.times);
                cols.threads.extend_from_slice(&t.threads);
                cols.sites.extend_from_slice(&t.sites);
                cols.kinds.extend_from_slice(&t.kinds);
                cols.clocks.extend_from_slice(&t.clocks);
                t.len()
            }
            None => 0,
        };
        let r = fresh.range(k);
        cols.times.extend_from_slice(&fresh.times[r.clone()]);
        cols.threads.extend_from_slice(&fresh.threads[r.clone()]);
        cols.sites.extend_from_slice(&fresh.sites[r.clone()]);
        cols.kinds.extend_from_slice(&fresh.kinds[r.clone()]);
        cols.clocks.extend_from_slice(&fresh.clocks[r.clone()]);
        cols.objs
            .extend(std::iter::repeat_n(obj, tail_len + r.len()));
        cols.objects.push(obj);
        cols.offsets.push(cols.times.len() as u32);
        fresh_from.push(tail_len as u32);
    }
    (cols, fresh_from)
}

/// Recomputes the tail map after a generation was absorbed: objects the
/// generation touched keep the δ-window suffix of their *combined*
/// segment; untouched tails are pruned against the new horizon.
fn update_tails(tails: &mut TailMap, combined: &ClassColumns, horizon: SimTime, delta: SimTime) {
    // An event can still pair with future (time ≥ horizon) events only
    // while `horizon − t < δ`.
    let expired = |t: SimTime| horizon.saturating_sub(t) >= delta;
    tails.retain(|obj, tail| {
        if combined.objects.binary_search(obj).is_ok() {
            // Replaced below from the combined columns.
            return true;
        }
        let keep_from = tail.times.partition_point(|&t| expired(t));
        if keep_from == tail.len() {
            return false;
        }
        tail.times.drain(..keep_from);
        tail.threads.drain(..keep_from);
        tail.sites.drain(..keep_from);
        tail.kinds.drain(..keep_from);
        tail.clocks.drain(..keep_from);
        true
    });
    for k in 0..combined.object_count() {
        let obj = combined.objects[k];
        let r = combined.range(k);
        let seg = &combined.times[r.clone()];
        let keep_from = r.start + seg.partition_point(|&t| expired(t));
        if keep_from == r.end {
            tails.remove(&obj);
            continue;
        }
        tails.insert(
            obj,
            Tail {
                times: combined.times[keep_from..r.end].to_vec(),
                threads: combined.threads[keep_from..r.end].to_vec(),
                sites: combined.sites[keep_from..r.end].to_vec(),
                kinds: combined.kinds[keep_from..r.end].to_vec(),
                clocks: combined.clocks[keep_from..r.end].to_vec(),
            },
        );
    }
}

impl IncrementalAnalysis {
    /// Opens an empty fold under `config`, with the TSV default window the
    /// batch path would use.
    pub fn new(config: AnalyzerConfig, default_window: SimTime) -> Self {
        Self {
            config,
            default_window,
            stats: NearMissStats::default(),
            pairs: PairMap::new(),
            tsv_seen: BTreeMap::new(),
            mem_tails: TailMap::new(),
            tsv_tails: TailMap::new(),
        }
    }

    /// Folds one freshly sealed generation into the running state.
    ///
    /// `mem`/`tsv` are the generation's columns (from
    /// [`SessionIndexBuilder::seal`](waffle_trace::SessionIndexBuilder::seal)),
    /// `pool` the session's monotonically grown clock pool, and `horizon`
    /// the latest event time the session has accepted (the tail-pruning
    /// bound). Sharded across `jobs` threads with the same deterministic
    /// merge as the batch sweep.
    pub fn absorb(
        &mut self,
        mem: &ClassColumns,
        tsv: &ClassColumns,
        pool: &ClockPool,
        horizon: SimTime,
        jobs: usize,
    ) {
        let delta = self.config.delta;
        {
            let (combined, fresh_from) = combine(&self.mem_tails, mem);
            let shards = shard_ranges(combined.object_count(), jobs);
            let outs = run_shards(shards, jobs, |slots| {
                sweep_mem_shard_from(
                    &combined,
                    pool,
                    slots,
                    delta,
                    self.config.prune_parent_child,
                    Some(&fresh_from),
                )
            });
            for out in outs {
                merge_mem_out(out, &mut self.stats, &mut self.pairs);
            }
            update_tails(&mut self.mem_tails, &combined, horizon, delta);
        }
        {
            let (combined, fresh_from) = combine(&self.tsv_tails, tsv);
            let shards = shard_ranges(combined.object_count(), jobs);
            let outs = run_shards(shards, jobs, |slots| {
                sweep_tsv_shard_from(&combined, slots, delta, self.default_window, Some(&fresh_from))
            });
            for out in outs {
                merge_tsv_out(out, &mut self.tsv_seen);
            }
            update_tails(&mut self.tsv_tails, &combined, horizon, delta);
        }
    }

    /// Sizes of the carried state (bounded by δ and site-pair diversity).
    pub fn state_stats(&self) -> IncrementalStats {
        IncrementalStats {
            pairs: self.pairs.len(),
            tsv_pairs: self.tsv_seen.len(),
            mem_tail_events: self.mem_tails.values().map(Tail::len).sum(),
            tsv_tail_events: self.tsv_tails.values().map(Tail::len).sum(),
        }
    }

    /// Finalizes the fold into a detection [`Plan`] and [`TsvPlan`].
    ///
    /// `compacted` is the session's compacted segment file (all
    /// generations merged), which the interference pass streams under
    /// `resident_bytes`; `None` (a session that never sealed an event)
    /// yields an empty interference set, matching the batch path on an
    /// empty trace.
    pub fn finish(
        mut self,
        workload: &str,
        compacted: Option<&mut SegmentReader>,
        resident_bytes: u64,
    ) -> io::Result<(Plan, TsvPlan)> {
        let candidates = candidates_from_pairs(self.pairs);
        self.stats.admitted = candidates.len();
        let delay_len = crate::analyzer::delay_plan(&candidates, &self.config);
        let interference = match (self.config.interference_control, compacted) {
            (true, Some(reader)) => {
                stream_interference(reader, &candidates, self.config.delta, resident_bytes)?
            }
            _ => InterferenceSet::new(),
        };
        let plan = Plan {
            workload: workload.to_string(),
            candidates,
            delay_len,
            interference,
            delta: self.config.delta,
            stats: self.stats,
            memory_model: self.config.memory,
        };
        let tsv = tsv_plan_from(workload.to_string(), self.tsv_seen);
        Ok((plan, tsv))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{analyze_jobs, analyze_tsv_indexed};
    use waffle_mem::SiteRegistry;
    use waffle_trace::{SessionIndexBuilder, Trace, TraceEvent, TraceIndex};
    use waffle_vclock::ClockSnapshot;

    /// A hand-built trace exercising cross-boundary windows: candidate
    /// pairs whose two events land in different thirds of the stream.
    fn stream_events() -> (SiteRegistry, ClockPool, Vec<TraceEvent>) {
        let mut sites = SiteRegistry::new();
        let si = sites.register("init", AccessKind::Init);
        let su = sites.register("use", AccessKind::Use);
        let sd = sites.register("dispose", AccessKind::Dispose);
        let sc = sites.register("call", AccessKind::UnsafeApiCall);
        let mut clocks = ClockPool::new();
        let mut events = Vec::new();
        let mut ev = |t: u64, thread: u32, site, obj: u32, kind, snap: &[(u32, u64)]| {
            let clock = clocks.intern(ClockSnapshot::from_entries(
                snap.iter().map(|&(t, v)| (ThreadId(t), v)),
            ));
            events.push(TraceEvent {
                time: SimTime::from_us(t),
                thread: ThreadId(thread),
                site,
                obj: ObjectId(obj),
                kind,
                dyn_index: 0,
                clock,
            });
        };
        // Pair within one chunk.
        ev(100, 0, si, 0, AccessKind::Init, &[(0, 1)]);
        ev(150, 1, su, 0, AccessKind::Use, &[(1, 1)]);
        // Pair spanning the first boundary (chunk size 4): i in chunk 0,
        // j in chunk 1, gap 80µs < δ.
        ev(400, 0, su, 1, AccessKind::Use, &[(0, 2)]);
        ev(420, 0, si, 2, AccessKind::Init, &[(0, 3)]);
        ev(480, 1, sd, 1, AccessKind::Dispose, &[(1, 2)]);
        ev(500, 1, su, 2, AccessKind::Use, &[(1, 3)]);
        // TSV pair spanning the second boundary.
        ev(700, 0, sc, 3, AccessKind::UnsafeApiCall, &[]);
        ev(760, 1, sc, 3, AccessKind::UnsafeApiCall, &[]);
        // A lower-numbered object for the (init, use) pair arriving late:
        // exercises the min-fold representative across generations.
        ev(90_000, 0, si, 5, AccessKind::Init, &[(0, 9)]);
        ev(90_010, 1, su, 5, AccessKind::Use, &[(1, 9)]);
        ev(95_000, 0, si, 4, AccessKind::Init, &[(0, 10)]);
        ev(95_020, 1, su, 4, AccessKind::Use, &[(1, 10)]);
        (sites, clocks, events)
    }

    #[test]
    fn chunked_absorbs_match_the_batch_sweep() {
        let (sites, clocks, events) = stream_events();
        let trace = Trace {
            workload: "inc.test".into(),
            sites: sites.clone(),
            events: events.clone(),
            forks: vec![],
            clocks: clocks.clone(),
            end_time: SimTime::from_us(100_000),
        };
        let config = AnalyzerConfig::default().without_interference_control();
        let w = SimTime::from_ms(1);
        let reference = analyze_jobs(&trace, &config, 1).to_json().unwrap();
        let tsv_reference = analyze_tsv_indexed(&TraceIndex::build(&trace), config.delta, w, 1)
            .to_json()
            .unwrap();

        let dir = std::env::temp_dir().join(format!("waffle-inc-unit-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        for chunk_size in [1, 3, 4, 12] {
            for jobs in [1, 2, 8] {
                let mut b = SessionIndexBuilder::new("inc.test");
                b.add_sites(
                    &sites
                        .iter()
                        .map(|(_, info)| (info.name.clone(), info.kind))
                        .collect::<Vec<_>>(),
                )
                .unwrap();
                b.add_clocks(clocks.snapshots()[1..].to_vec()).unwrap();
                let mut inc = IncrementalAnalysis::new(config, w);
                for (g, chunk) in events.chunks(chunk_size).enumerate() {
                    b.push_batch(chunk.to_vec()).unwrap();
                    let path = dir.join(format!("gen-{chunk_size}-{jobs}-{g}.wseg"));
                    let out = b.seal(&path).unwrap();
                    inc.absorb(&out.mem, &out.tsv, b.clocks(), b.last_time(), jobs);
                    let _ = std::fs::remove_file(&path);
                }
                let (plan, tsv) = inc.finish("inc.test", None, u64::MAX).unwrap();
                assert_eq!(
                    plan.to_json().unwrap(),
                    reference,
                    "plan drifted (chunk={chunk_size}, jobs={jobs})"
                );
                assert_eq!(
                    tsv.to_json().unwrap(),
                    tsv_reference,
                    "tsv drifted (chunk={chunk_size}, jobs={jobs})"
                );
            }
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn tails_stay_bounded_by_the_window() {
        let mut sites = SiteRegistry::new();
        let si = sites.register("init", AccessKind::Init);
        let mut b = SessionIndexBuilder::new("inc.tail");
        b.add_sites(&[("init".into(), AccessKind::Init)]).unwrap();
        let config = AnalyzerConfig::default();
        let mut inc = IncrementalAnalysis::new(config, SimTime::from_ms(1));
        let dir = std::env::temp_dir().join(format!("waffle-inc-tail-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        // Events far apart in time: each generation's tail must evict the
        // previous generation entirely (gap >> δ).
        for g in 0u64..5 {
            for i in 0..100 {
                b.push(TraceEvent {
                    time: SimTime::from_us(g * 10_000_000 + i),
                    thread: ThreadId(0),
                    site: si,
                    obj: ObjectId(0),
                    kind: AccessKind::Init,
                    dyn_index: 0,
                    clock: waffle_trace::ClockId::EMPTY,
                })
                .unwrap();
            }
            let path = dir.join(format!("gen-{g}.wseg"));
            let out = b.seal(&path).unwrap();
            inc.absorb(&out.mem, &out.tsv, b.clocks(), b.last_time(), 1);
            let _ = std::fs::remove_file(&path);
            let s = inc.state_stats();
            assert!(
                s.mem_tail_events <= 100,
                "tail grew past one generation: {}",
                s.mem_tail_events
            );
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
