//! Oracle-certified fix synthesis: from a confirmed manifestation to the
//! cheapest synchronization patch the schedule oracle proves unexposable.
//!
//! The racing site pair comes straight from the delay plan's near-miss
//! candidates (the same happens-before-pruned pairs delay injection
//! targets), so synthesis consumes exactly the evidence the detector
//! already produces. The candidate grammar is small and ordered by cost:
//!
//! 1. **Fence** after each store (init/dispose) of the faulting object —
//!    weak-memory models only; a fence is a no-op under sc.
//! 2. **Event edge**: a fresh sticky event signaled after the candidate
//!    pair's delay site and awaited before its other site, forcing the
//!    ordering the bug violates.
//! 3. **Lock scope**: a fresh mutex wrapped around both scripts' regions
//!    of accesses to the faulting object, serializing check-then-act
//!    windows no single ordering edge can close.
//!
//! Certification is delegated through a callback so this crate stays
//! independent of the oracle's crate: the caller re-runs the bounded
//! explorer on each patched workload at the *original* preemption bound
//! under the *original* memory model, and a patch is accepted only when
//! the verdict is clean within bound **and** deadlock-free — a patch that
//! trades the race for a deadlock would otherwise certify vacuously.
//! Synthesis returns the first certified patch in cost order, or an
//! unrepairable report carrying the tried-candidate count.

use serde::{Deserialize, Serialize};
use waffle_mem::{AccessKind, NullRefKind, ObjectId};
use waffle_sim::{MemoryModel, Op, RepairKind, RepairPatch, ScriptId, Workload};

use crate::plan::Plan;

/// Verdict of one oracle certification run over a patched workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Certification {
    /// Clean within the bound and deadlock-free: the patch is certified.
    Unexposable {
        /// Frontier states the certifying exploration visited.
        states: u64,
    },
    /// The bug still manifests under the patch.
    StillExposable,
    /// The exploration truncated, or the patch introduced a deadlock —
    /// either way the clean verdict proves nothing.
    Inconclusive,
}

/// Outcome of fix synthesis for one confirmed manifestation. `patch` is
/// `Some` only when the oracle certified it — an uncertified patch is
/// unrepresentable.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RepairReport {
    /// Workload the bug manifested in.
    pub workload: String,
    /// Manifestation class being repaired.
    pub kind: NullRefKind,
    /// Faulting object.
    pub obj: ObjectId,
    /// Memory model the bug manifested (and the patch certified) under.
    pub memory_model: MemoryModel,
    /// Preemption bound of the certifying exploration.
    pub preemption_bound: u32,
    /// Candidate patches applied and oracle-checked before this outcome.
    pub candidates_tried: u32,
    /// The certified patch, or `None` when the case is unrepairable
    /// within the grammar.
    pub patch: Option<RepairPatch>,
    /// Human-readable description of the certified patch.
    pub description: Option<String>,
    /// Frontier states of the certifying exploration (zero when
    /// unrepairable).
    pub certified_states: u64,
}

impl RepairReport {
    /// Whether synthesis produced an oracle-certified patch.
    pub fn certified(&self) -> bool {
        self.patch.is_some()
    }

    /// Grammar production of the certified patch, if any.
    pub fn repair_kind(&self) -> Option<RepairKind> {
        self.patch.as_ref().map(|p| p.kind())
    }

    /// Multi-line human-readable report.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "repair {}: {} on {} (model {}, preemption bound {})\n",
            self.workload,
            self.kind.label(),
            self.obj,
            self.memory_model.name(),
            self.preemption_bound
        ));
        match (&self.patch, &self.description) {
            (Some(patch), desc) => {
                out.push_str(&format!(
                    "  certified patch [{}]: {}\n",
                    patch.kind().label(),
                    desc.as_deref().unwrap_or("(no description)")
                ));
                out.push_str(&format!(
                    "  oracle: unexposable at bound {} under {} ({} states, candidate {} of {})\n",
                    self.preemption_bound,
                    self.memory_model.name(),
                    self.certified_states,
                    self.candidates_tried,
                    self.candidates_tried.max(1)
                ));
            }
            (None, _) => {
                out.push_str(&format!(
                    "  unrepairable within the candidate grammar ({} candidate(s) tried)\n",
                    self.candidates_tried
                ));
            }
        }
        out
    }
}

/// Enumerates the candidate grammar for `obj` in deterministic cost
/// order. The plan supplies the racing site pairs; the workload supplies
/// static op positions.
pub fn enumerate_candidates(
    w: &Workload,
    plan: &Plan,
    obj: ObjectId,
    model: MemoryModel,
) -> Vec<RepairPatch> {
    let mut out: Vec<RepairPatch> = Vec::new();

    // Cost 0: fences after each store of the faulting object (weak models
    // only — under sc program order is already the memory order).
    if model.is_weak() {
        for (si, script) in w.scripts.iter().enumerate() {
            for (pos, op) in script.ops.iter().enumerate() {
                if let Op::Access { obj: o, kind, .. } = op {
                    if *o == obj && matches!(kind, AccessKind::Init | AccessKind::Dispose) {
                        out.push(RepairPatch::Fence {
                            script: ScriptId(si as u32),
                            pos,
                        });
                    }
                }
            }
        }
    }

    // Cost 1: one ordering edge per racing candidate pair on the object.
    // The fix direction is uniform: the pair records "a delay at
    // `delay_site` pushes it past `other_site`", so the repair forces
    // `delay_site`'s op to commit first — signal after it, wait before the
    // other.
    let mut pairs: Vec<(ScriptId, ScriptId)> = Vec::new();
    for c in plan.candidates.iter().filter(|c| c.obj == obj) {
        let Some((ss, sp)) = first_op_at_site(w, c.delay_site) else {
            continue;
        };
        let Some((ws, wp)) = first_op_at_site(w, c.other_site) else {
            continue;
        };
        if ss == ws {
            continue;
        }
        let edge = RepairPatch::EventEdge {
            signal_script: ss,
            signal_pos: sp,
            wait_script: ws,
            wait_pos: wp,
        };
        if !out.contains(&edge) {
            out.push(edge);
        }
        let pair = (ss.min(ws), ss.max(ws));
        if !pairs.contains(&pair) {
            pairs.push(pair);
        }
    }

    // Cost 2: lock scopes over every pair of scripts touching the object.
    // Start from the racing pairs the plan identified, then fall back to
    // all touching pairs so guard-window races without an admitted
    // near-miss pair still get a lock candidate.
    let touching: Vec<ScriptId> = (0..w.scripts.len())
        .map(|i| ScriptId(i as u32))
        .filter(|s| object_region(w, *s, obj).is_some())
        .collect();
    for i in 0..touching.len() {
        for j in (i + 1)..touching.len() {
            let pair = (touching[i], touching[j]);
            if !pairs.contains(&pair) {
                pairs.push(pair);
            }
        }
    }
    for (a, b) in pairs {
        let (Some((a_start, a_end)), Some((b_start, b_end))) =
            (lockable_region(w, a, obj), lockable_region(w, b, obj))
        else {
            continue;
        };
        let lock = RepairPatch::LockScope {
            a_script: a,
            a_start,
            a_end,
            b_script: b,
            b_start,
            b_end,
        };
        if !out.contains(&lock) {
            out.push(lock);
        }
    }

    out
}

/// Synthesizes the cheapest certified patch for one manifestation.
///
/// `certify` re-runs the bounded oracle on a patched workload; synthesis
/// accepts the first candidate (in `fence < event edge < lock` cost
/// order, deterministic within each tier) it reports
/// [`Certification::Unexposable`] for.
pub fn synthesize(
    w: &Workload,
    plan: &Plan,
    kind: NullRefKind,
    obj: ObjectId,
    model: MemoryModel,
    preemption_bound: u32,
    certify: &mut dyn FnMut(&Workload) -> Certification,
) -> RepairReport {
    let base = RepairReport {
        workload: w.name.clone(),
        kind,
        obj,
        memory_model: model,
        preemption_bound,
        candidates_tried: 0,
        patch: None,
        description: None,
        certified_states: 0,
    };
    let mut tried = 0u32;
    for patch in enumerate_candidates(w, plan, obj, model) {
        let Ok(patched) = patch.apply(w) else {
            continue;
        };
        tried += 1;
        if let Certification::Unexposable { states } = certify(&patched) {
            return RepairReport {
                candidates_tried: tried,
                description: Some(patch.describe(w)),
                patch: Some(patch),
                certified_states: states,
                ..base
            };
        }
    }
    RepairReport {
        candidates_tried: tried,
        ..base
    }
}

/// First static op at `site`, scanning scripts then ops in order.
fn first_op_at_site(w: &Workload, site: waffle_mem::SiteId) -> Option<(ScriptId, usize)> {
    for (si, script) in w.scripts.iter().enumerate() {
        for (pos, op) in script.ops.iter().enumerate() {
            if matches!(op, Op::Access { site: s, .. } if *s == site) {
                return Some((ScriptId(si as u32), pos));
            }
        }
    }
    None
}

/// Inclusive op range of `script` touching `obj` (accesses and guard
/// checks), or `None` when the script never touches it.
fn object_region(w: &Workload, script: ScriptId, obj: ObjectId) -> Option<(usize, usize)> {
    let ops = &w.scripts.get(script.0 as usize)?.ops;
    let mut range: Option<(usize, usize)> = None;
    for (pos, op) in ops.iter().enumerate() {
        let touches = match op {
            Op::Access { obj: o, .. } => *o == obj,
            Op::SkipIf { obj: o, .. } => *o == obj,
            _ => false,
        };
        if touches {
            range = Some(match range {
                None => (pos, pos),
                Some((start, _)) => (start, pos),
            });
        }
    }
    range
}

/// [`object_region`] restricted to regions a lock may legally wrap: no
/// blocking op (join, wait, lock) and no thread-structure op inside — a
/// lock held across those either deadlocks or leaks out of the region.
fn lockable_region(w: &Workload, script: ScriptId, obj: ObjectId) -> Option<(usize, usize)> {
    let (start, end) = object_region(w, script, obj)?;
    let ops = &w.scripts[script.0 as usize].ops;
    let safe = ops[start..=end].iter().all(|op| {
        !matches!(
            op,
            Op::Fork { .. }
                | Op::JoinScript { .. }
                | Op::JoinChildren
                | Op::WaitEvent { .. }
                | Op::Acquire { .. }
                | Op::Release { .. }
                | Op::SpawnTask { .. }
                | Op::RunTasks
                | Op::Throw { .. }
                | Op::Exit
        )
    });
    safe.then_some((start, end))
}
