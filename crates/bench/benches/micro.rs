//! Criterion micro-benchmarks: the per-component costs behind the tool.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use waffle_analysis::{analyze, AnalyzerConfig};
use waffle_apps::all_apps;
use waffle_sim::{NullMonitor, SimConfig, Simulator};
use waffle_trace::TraceRecorder;
use waffle_vclock::{ClassicClock, LiveClock};

fn bench_vclock(c: &mut Criterion) {
    c.bench_function("vclock/live_fork_chain_32", |b| {
        b.iter(|| {
            let mut clocks = vec![LiveClock::root(0u32)];
            for i in 1..32u32 {
                let parent = (i / 2) as usize;
                let c = clocks[parent].fork(i / 2, i);
                clocks.push(c);
            }
            black_box(clocks.len())
        })
    });
    c.bench_function("vclock/snapshot_order", |b| {
        let mut root: ClassicClock<u32> = ClassicClock::root(0);
        let child = root.fork(0, 1);
        let (s1, s2) = (root.snapshot(), child.snapshot());
        b.iter(|| black_box(s1.order(&s2)))
    });
}

fn bench_sim(c: &mut Criterion) {
    let app = all_apps().into_iter().find(|a| a.name == "NpgSQL").unwrap();
    let w = app.tests[0].workload.clone();
    c.bench_function("sim/npgsql_test_uninstrumented", |b| {
        b.iter(|| {
            let r = Simulator::run(&w, SimConfig::with_seed(1), &mut NullMonitor);
            black_box(r.ops_executed)
        })
    });
}

fn bench_analysis(c: &mut Criterion) {
    let app = all_apps().into_iter().find(|a| a.name == "NpgSQL").unwrap();
    let w = app.tests[0].workload.clone();
    let mut rec = TraceRecorder::new(&w);
    let _ = Simulator::run(&w, SimConfig::with_seed(1), &mut rec);
    let trace = rec.into_trace();
    c.bench_function("analysis/npgsql_trace", |b| {
        b.iter(|| {
            let plan = analyze(&trace, &AnalyzerConfig::default());
            black_box(plan.candidates.len())
        })
    });
}

#[allow(missing_docs)]
mod harness {
    use super::*;
    criterion_group!(benches, bench_vclock, bench_sim, bench_analysis);
}
criterion_main!(harness::benches);
