//! Table 5: average overhead on all test inputs (Run#1 / Run#2 versus the
//! uninstrumented base), per application. LiteDB is excluded (too few
//! multi-threaded tests), as in the paper.

use waffle_apps::all_apps;
use waffle_bench::{engine_from_env, overhead_for_app_on};

fn reps() -> u32 {
    std::env::var("WAFFLE_REPS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(5)
}

fn main() {
    let reps = reps();
    println!("Table 5: average overhead on all test inputs ({reps} repetitions)");
    println!(
        "{:<20} {:>9} | {:>10} {:>10} | {:>10} {:>10}",
        "App", "Base(ms)", "Basic R#1", "Basic R#2", "Waffle R#1", "Waffle R#2"
    );
    let engine = engine_from_env();
    for app in all_apps() {
        if app.name == "LiteDB" {
            continue;
        }
        let row = overhead_for_app_on(&app, reps, &engine);
        let (b1, b2) = match row.basic {
            Some((a, b)) => (format!("{a:.0}%"), format!("{b:.0}%")),
            None => ("TimeOut".into(), "TimeOut".into()),
        };
        println!(
            "{:<20} {:>9.0} | {:>10} {:>10} | {:>9.0}% {:>9.0}%",
            row.app, row.base_ms, b1, b2, row.waffle.0, row.waffle.1
        );
    }
}
