//! Figure 4: the two delay-interference case studies, replayed.
//!
//! (a) ApplicationInsights issue #1106 (Bug-10): interfering *bugs* — a
//!     use-before-init and a use-after-free candidate on the same object.
//! (b) NetMQ issue #814 (Bug-11): interfering *dynamic instances* — the
//!     check site executed by the disposing thread right before the
//!     dispose cancels the delay on the racing thread's instance.
//!
//! For each, WaffleBasic and Waffle run with full diagnostics.

use waffle_apps::bug;
use waffle_core::{Detector, DetectorConfig, Tool};

fn replay(bug_id: u32, label: &str) {
    let spec = bug(bug_id).expect("bug exists");
    let app = waffle_apps::all_apps()
        .into_iter()
        .find(|a| a.name == spec.app)
        .unwrap();
    let w = app.bug_workload(bug_id).unwrap().clone();
    println!("== Figure 4{label}: {} ({} issue {}) ==", w.name, spec.app, spec.issue);
    for (tool, name, cap) in [
        (Tool::waffle_basic(), "WaffleBasic", 10u32),
        (Tool::waffle(), "Waffle", 5),
    ] {
        let det = Detector::with_config(
            tool,
            DetectorConfig {
                max_detection_runs: cap,
                ..DetectorConfig::default()
            },
        );
        let outcome = det.detect(&w, 1);
        match &outcome.exposed {
            Some(r) => println!(
                "  {name:<12} exposed {} at {} in run {}/{} ({} delays in the exposing run)",
                r.kind.label(),
                r.site,
                r.exposed_in_run,
                outcome.total_runs(),
                r.delays_in_run
            ),
            None => println!(
                "  {name:<12} missed the bug in {} runs (delays kept cancelling)",
                outcome.detection_runs.len()
            ),
        }
    }
    println!();
}

fn main() {
    replay(10, "a");
    replay(11, "b");
}
