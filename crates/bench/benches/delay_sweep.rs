//! §4.3's delay-length sensitivity study, reproduced as a sweep.
//!
//! The paper: "decreasing the delay length from 100 to 10 milliseconds
//! would speed up ... NetMQ [by] about 4 times ... Unfortunately, the
//! known MemOrder bug [#814] which could be exposed with delays of 100
//! milliseconds cannot be triggered with delays of only 10 milliseconds
//! even after many runs." This harness sweeps WaffleBasic's fixed delay
//! length on Bug-11 and on NetMQ's background inputs.

use waffle_apps::all_apps;
use waffle_inject::{BasicState, WaffleBasicPolicy};
use waffle_sim::time::ms;
use waffle_sim::{NullMonitor, SimConfig, Simulator};

fn main() {
    let app = all_apps().into_iter().find(|a| a.name == "NetMQ").unwrap();
    let bug = app.bug_workload(11).unwrap().clone();
    let base = Simulator::run(&bug, SimConfig::with_seed(0), &mut NullMonitor).end_time;
    println!("Delay-length sensitivity (WaffleBasic on NetMQ, Bug-11 input, 25-run cap)");
    println!(
        "{:>10} | {:>12} | {:>16} | {:>20}",
        "delay(ms)", "exposed?", "runs to expose", "avg run slowdown"
    );
    for delay_ms in [5u64, 10, 25, 50, 100, 200] {
        let mut state = BasicState::default();
        let mut exposed = None;
        let mut total = waffle_sim::SimTime::ZERO;
        let mut runs = 0u32;
        for run in 1..=25u64 {
            state.decay = Default::default();
            let mut p = WaffleBasicPolicy::with_params(
                state,
                run,
                ms(delay_ms),
                WaffleBasicPolicy::DELTA,
            );
            let r = Simulator::run(
                &bug,
                SimConfig {
                    seed: run,
                    deadline: Some(base * 40),
                    ..SimConfig::default()
                },
                &mut p,
            );
            state = p.into_state();
            total += r.end_time;
            runs += 1;
            if r.manifested() && !r.delays.is_empty() {
                exposed = Some(run);
                break;
            }
        }
        let avg_slow = total.as_us() as f64 / (runs as f64 * base.as_us() as f64);
        println!(
            "{:>10} | {:>12} | {:>16} | {:>19.2}x",
            delay_ms,
            if exposed.is_some() { "yes" } else { "NO" },
            exposed.map(|r| r.to_string()).unwrap_or("-".into()),
            avg_slow
        );
    }
    println!();
    println!("(Paper shape: short delays are cheap but cannot flip the ~10ms gap; the");
    println!(" 100ms default exposes the bug at a multiple of the cost — the trade-off");
    println!(" Waffle's per-location variable lengths dissolve.)");
}
