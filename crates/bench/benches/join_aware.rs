//! Precision extension: join-edge-aware vector clocks.
//!
//! The paper's analysis tracks fork edges only (§4.1); teardown disposals
//! ordered behind a `join` therefore stay in the candidate set and eat
//! detection-run delays. Merging the joined thread's clock at each join
//! prunes them. This harness measures candidates and detection-run delays
//! per application under both protocols, and confirms the seeded bugs are
//! all still exposed (join edges never order a real race).

use waffle_analysis::{analyze, AnalyzerConfig};
use waffle_apps::{all_apps, all_bugs};
use waffle_inject::{DecayState, WafflePolicy};
use waffle_sim::{SimConfig, Simulator, Workload};
use waffle_trace::{ClockProtocol, TraceRecorder};

fn plan_for(w: &Workload, protocol: ClockProtocol) -> waffle_analysis::Plan {
    let mut rec =
        TraceRecorder::with_options(w, TraceRecorder::DEFAULT_OVERHEAD, protocol);
    let _ = Simulator::run(w, SimConfig::with_seed(1), &mut rec);
    analyze(&rec.into_trace(), &AnalyzerConfig::default())
}

fn detection_delays(w: &Workload, protocol: ClockProtocol) -> u64 {
    let plan = plan_for(w, protocol);
    let mut p = WafflePolicy::new(plan, DecayState::default(), 2);
    let r = Simulator::run(w, SimConfig::with_seed(2), &mut p);
    r.delays.len() as u64
}

fn main() {
    println!("Precision extension: fork-only vs join-aware clocks");
    println!(
        "{:<20} | {:>11} {:>11} | {:>11} {:>11}",
        "App", "cand(fork)", "cand(join)", "dly(fork)", "dly(join)"
    );
    for app in all_apps() {
        let mut cf = 0usize;
        let mut cj = 0usize;
        let mut df = 0u64;
        let mut dj = 0u64;
        for t in &app.tests {
            cf += plan_for(&t.workload, ClockProtocol::Classic).candidates.len();
            cj += plan_for(&t.workload, ClockProtocol::ClassicWithJoins)
                .candidates
                .len();
            df += detection_delays(&t.workload, ClockProtocol::Classic);
            dj += detection_delays(&t.workload, ClockProtocol::ClassicWithJoins);
        }
        println!(
            "{:<20} | {:>11} {:>11} | {:>11} {:>11}",
            app.name, cf, cj, df, dj
        );
    }
    // Bug coverage is preserved: every seeded bug still exposes with the
    // join-aware plan in a handful of runs.
    let mut exposed = 0;
    for spec in all_bugs() {
        let app = all_apps().into_iter().find(|a| a.name == spec.app).unwrap();
        let w = app.bug_workload(spec.id).unwrap().clone();
        let plan = plan_for(&w, ClockProtocol::ClassicWithJoins);
        let mut decay = DecayState::default();
        for run in 0..8u64 {
            let mut p = WafflePolicy::new(plan.clone(), decay, 100 + run);
            let r = Simulator::run(&w, SimConfig::with_seed(100 + run), &mut p);
            decay = p.into_decay();
            if r.manifested() && !r.delays.is_empty() {
                exposed += 1;
                break;
            }
        }
    }
    println!("\nseeded bugs still exposed with join-aware plans: {exposed}/18");
    println!("(Shape: join awareness removes the teardown candidates the paper's fork-only");
    println!(" analysis keeps paying for, at no cost in bug coverage.)");
}
