//! Table 3: the benchmark suite inventory.

use waffle_apps::all_apps;

fn main() {
    println!("Table 3: details about the set of applications used to evaluate Waffle");
    println!(
        "{:<20} {:>8} {:>20} {:>18} {:>8}",
        "Application", "LoC", "# MT tests (paper)", "# tests (here)", "# Stars"
    );
    for app in all_apps() {
        println!(
            "{:<20} {:>7.1}K {:>20} {:>18} {:>7.1}K",
            app.name,
            app.meta.loc_k,
            app.meta.mt_tests_paper,
            app.tests.len(),
            app.meta.stars_k
        );
    }
    println!();
    println!("Seeded bugs (Table 4 inventory):");
    for b in waffle_apps::all_bugs() {
        println!(
            "  Bug-{:<3} {:<20} issue {:<6} {:<9} {}",
            b.id,
            b.app,
            b.issue,
            if b.known { "known" } else { "unknown" },
            b.test_name
        );
    }
}
