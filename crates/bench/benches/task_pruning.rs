//! Extension study: async-local task clocks (§4.1's task note).
//!
//! On task-oriented workloads, spawner→task causality is invisible to
//! thread-level vector clocks — the pool workers are forked long before
//! the spawns. Tracking clocks through the async-local channel restores
//! the pruning: this harness compares candidate counts and detection-run
//! delay cost with and without it.

use waffle_analysis::{analyze, AnalyzerConfig};
use waffle_apps::extensions::task_request_pipeline;
use waffle_inject::{DecayState, WafflePolicy};
use waffle_sim::time::ms;
use waffle_sim::{SimConfig, SimTime, Simulator};
use waffle_trace::TraceRecorder;

fn main() {
    println!("Extension: async-local task-clock pruning on task-oriented workloads");
    println!(
        "{:>10} | {:>22} {:>14} | {:>22} {:>14}",
        "requests", "async-local candidates", "delay cost", "thread-only candidates", "delay cost"
    );
    for requests in [4u32, 8, 16, 32] {
        let w = task_request_pipeline(&format!("bench.tasks{requests}"), requests, 3);
        let mut row = Vec::new();
        for async_local in [true, false] {
            let rec = TraceRecorder::new(&w);
            let mut rec = if async_local {
                rec
            } else {
                rec.without_async_local()
            };
            let _ = Simulator::run(&w, SimConfig::with_seed(1), &mut rec);
            let plan = analyze(&rec.into_trace(), &AnalyzerConfig::default());
            let candidates = plan.candidates.len();
            let mut policy = WafflePolicy::new(plan, DecayState::default(), 2);
            let r = Simulator::run(&w, SimConfig::with_seed(2), &mut policy);
            row.push((candidates, r.total_delay()));
        }
        println!(
            "{:>10} | {:>22} {:>14} | {:>22} {:>14}",
            requests,
            row[0].0,
            row[0].1.to_string(),
            row[1].0,
            row[1].1.to_string()
        );
    }
    println!();
    println!("(Shape: async-local tracking prunes the spawn-ordered init→use pairs that");
    println!(" thread-level clocks cannot see, eliminating their detection-run delays —");
    println!(" the task analogue of the paper's parent-child thread analysis.)");
    let _ = ms(1);
    let _ = SimTime::ZERO;
}
