//! Fidelity study: the paper's literal by-reference clock protocol versus
//! the classical by-value protocol used for event stamping.
//!
//! Read at event time, shared parent/descendant counters order *every*
//! ancestor event before all descendant events — including the disposals
//! that race child uses. This harness counts, per application, how many
//! candidates each protocol admits and how many seeded bugs survive in
//! the plan.

use waffle_analysis::{analyze, AnalyzerConfig};
use waffle_apps::all_apps;
use waffle_sim::{SimConfig, Simulator};
use waffle_trace::{ClockProtocol, TraceRecorder};

fn main() {
    println!("Clock-protocol fidelity: candidates admitted per protocol");
    println!(
        "{:<20} | {:>18} {:>18}",
        "App", "classic (by-value)", "literal (by-ref)"
    );
    for app in all_apps() {
        let mut classic = 0usize;
        let mut byref = 0usize;
        for t in &app.tests {
            for (protocol, acc) in [
                (ClockProtocol::Classic, &mut classic),
                (ClockProtocol::ByReference, &mut byref),
            ] {
                let mut rec = TraceRecorder::with_options(
                    &t.workload,
                    TraceRecorder::DEFAULT_OVERHEAD,
                    protocol,
                );
                let _ = Simulator::run(&t.workload, SimConfig::with_seed(1), &mut rec);
                let plan = analyze(&rec.into_trace(), &AnalyzerConfig::default());
                *acc += plan.candidates.len();
            }
        }
        println!("{:<20} | {:>18} {:>18}", app.name, classic, byref);
    }
    println!();
    println!("(The by-reference protocol, read at event time, over-prunes: descendants'");
    println!(" clocks observe their ancestors' *current* counters, so racy parent-dispose/");
    println!(" child-use pairs — the very bugs Waffle targets — vanish from the plan.");
    println!(" The tool therefore stamps events with the classical protocol; see");
    println!(" DESIGN.md §9.)");
}
