//! Table 7: alternative designs detect fewer bugs with slower detection
//! runs. Each ablation disables one of Waffle's four design points; the
//! table reports bugs missed (out of 18) and the average detection-run
//! slowdown relative to full Waffle across all test inputs.

use waffle_apps::{all_apps, all_bugs};
use waffle_bench::engine_from_env;
use waffle_core::{Detector, DetectorConfig, ExperimentEngine, GridCell, Tool};

fn reps() -> u32 {
    std::env::var("WAFFLE_REPS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(5)
}

/// Average first-detection-run time across every test input.
fn avg_detection_time(tool: Tool, engine: &ExperimentEngine) -> f64 {
    let det = Detector::with_config(
        tool,
        DetectorConfig {
            max_detection_runs: 1,
            ..DetectorConfig::default()
        },
    );
    let mut total = 0.0f64;
    let mut n = 0u64;
    for app in all_apps() {
        for t in &app.tests {
            // Attempt 0's seed is 1, matching the sequential harness.
            let outcomes = engine.run_attempts(&det, &t.workload, 1);
            if let Some(r) = outcomes.iter().flat_map(|o| o.detection_runs.first()).next() {
                total += r.time.as_us() as f64;
                n += 1;
            }
        }
    }
    total / n as f64
}

/// The experiment grid for one tool over all 18 bug inputs.
fn bug_grid(det: &Detector, reps: u32) -> Vec<GridCell> {
    all_bugs()
        .iter()
        .map(|spec| {
            let app = all_apps().into_iter().find(|a| a.name == spec.app).unwrap();
            GridCell {
                workload: app.bug_workload(spec.id).unwrap().clone(),
                detector: det.clone(),
                attempts: reps,
            }
        })
        .collect()
}

/// Bug exposure within Waffle's own run budget: full Waffle needs at most
/// five detection runs on any of the 18 bugs, so each variant gets five —
/// over an unbounded budget, probability decay desynchronizes the parallel
/// delays and even the crippled variants eventually get lucky, which is
/// not the comparison Table 7 draws.
fn bugs_found(tool: Tool, reps: u32, engine: &ExperimentEngine) -> u32 {
    let det = Detector::with_config(
        tool,
        DetectorConfig {
            max_detection_runs: 5,
            ..DetectorConfig::default()
        },
    );
    let summaries = engine.run_grid(&bug_grid(&det, reps));
    summaries.iter().filter(|s| s.detected()).count() as u32
}

fn bugs_found_full_budget(reps: u32, engine: &ExperimentEngine) -> u32 {
    let det = Detector::new(Tool::waffle());
    let summaries = engine.run_grid(&bug_grid(&det, reps));
    summaries.iter().filter(|s| s.detected()).count() as u32
}

fn main() {
    let reps = reps();
    let engine = engine_from_env();
    println!("Table 7: ablations ({reps} repetitions; baseline = full Waffle)");
    let base_bugs = bugs_found_full_budget(reps, &engine);
    let base_time = avg_detection_time(Tool::waffle(), &engine);
    println!("full Waffle: {base_bugs}/18 bugs");
    println!(
        "{:<34} {:>12} {:>18}",
        "variant", "# missed", "slowdown vs Waffle"
    );
    for (name, tool, paper_missed, paper_slow) in [
        (
            "no parent-child analysis (s4.1)",
            Tool::waffle_no_parent_child(),
            0,
            1.17,
        ),
        ("no preparation run (s4.2)", Tool::waffle_no_prep(), 4, 1.84),
        (
            "no custom delay length (s4.3)",
            Tool::waffle_fixed_delay(),
            1,
            1.03,
        ),
        (
            "no interference control (s4.4)",
            Tool::waffle_no_interference(),
            6,
            1.41,
        ),
    ] {
        let found = bugs_found(tool.clone(), reps, &engine);
        let missed = base_bugs.saturating_sub(found);
        let slow = avg_detection_time(tool, &engine) / base_time;
        println!(
            "{:<34} {:>12} {:>17.2}x   (paper: {} missed, {:.2}x)",
            name, missed, slow, paper_missed, paper_slow
        );
    }
}
