//! Figure 3: Waffle's workflow, traced stage by stage on one input.
//!
//! Preparation run (trace collection) → trace analysis (candidate set S,
//! delay lengths, interference set I) → detection run(s) → bug report.

use waffle_analysis::{analyze, AnalyzerConfig};
use waffle_apps::{all_apps, bug};
use waffle_inject::{DecayState, WafflePolicy};
use waffle_sim::{NullMonitor, SimConfig, Simulator};
use waffle_trace::TraceRecorder;

fn main() {
    let spec = bug(1).unwrap();
    let app = all_apps().into_iter().find(|a| a.name == spec.app).unwrap();
    let w = app.bug_workload(1).unwrap().clone();
    println!("Figure 3: the Waffle workflow on {} \n", w.name);

    let base = Simulator::run(&w, SimConfig::with_seed(0), &mut NullMonitor);
    println!("[input]       base execution: {} ({} heap accesses)", base.end_time, base.instrumented_ops);

    // Stage 1: preparation run.
    let mut rec = TraceRecorder::new(&w);
    let prep = Simulator::run(&w, SimConfig::with_seed(1), &mut rec);
    let trace = rec.into_trace();
    println!(
        "[preparation] delay-free instrumented run: {} (+{:.0}%), {} events recorded",
        prep.end_time,
        (prep.end_time.as_us() as f64 / base.end_time.as_us() as f64 - 1.0) * 100.0,
        trace.events.len()
    );

    // Stage 2: trace analysis.
    let plan = analyze(&trace, &AnalyzerConfig::default());
    println!(
        "[analysis]    near-misses examined: {}, pruned by parent-child clocks: {}",
        plan.stats.examined, plan.stats.pruned_ordered
    );
    println!(
        "[analysis]    candidate set S: {} pairs at {} delay locations; interference set I: {} pairs",
        plan.candidates.len(),
        plan.delay_len.len(),
        plan.interference.len()
    );
    for c in &plan.candidates {
        println!(
            "                {{{}, {}}} [{}] gap {} -> planned delay {}",
            w.sites.name(c.delay_site),
            w.sites.name(c.other_site),
            c.kind.label(),
            c.max_gap,
            plan.delay_for(c.delay_site)
        );
    }

    // Stage 3: detection run(s).
    let mut decay = DecayState::default();
    for run in 1..=3u64 {
        let mut p = WafflePolicy::new(plan.clone(), decay, run);
        let r = Simulator::run(&w, SimConfig::with_seed(1 + run), &mut p);
        let stats = p.stats();
        decay = p.into_decay();
        println!(
            "[detection {run}] {} injected, {} skipped (probability), {} skipped (interference): {}",
            stats.injected,
            stats.skipped_probability,
            stats.skipped_interference,
            if r.manifested() { "BUG EXPOSED" } else { "no manifestation" }
        );
        if let Some(e) = r.exceptions.first() {
            println!(
                "[report]      {} at {} in {} @ {}",
                e.error.kind.label(),
                w.sites.name(e.error.site),
                e.thread,
                e.time
            );
            break;
        }
    }
}
