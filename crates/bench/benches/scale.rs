//! `scale`: out-of-core columnar scan throughput, flat-memory growth, and
//! coordinator-free campaign worker scaling, written to `BENCH_scale.json`
//! (`WAFFLE_BENCH_SCALE_OUT` overrides the path).
//!
//! The input is a synthetic ≥10M-event trace built directly (no simulator
//! run — at this size the dispatch loop would dominate the bench): 4096
//! objects round-robined over four threads, per-object site trios, and a
//! clock population shaped like real application traces — a bounded pool
//! of heavily-reused interned snapshots, almost all cross-thread pairs
//! parent-child *ordered* (the §4.1 pruning reality), with a handful of
//! genuinely concurrent objects carrying the candidates. That shape is
//! exactly where the seed-state scanner hurts: it re-groups the raw
//! event vector per pass and re-walks full vector clocks per examined
//! pair, while the columnar sweep reads packed arrays and memo-hits the
//! interned `(ClockId, ClockId)` pairs.
//!
//! Three claims, asserted before the report is written:
//! 1. the indexed scan is ≥10× the unindexed scanner at the 10M size
//!    (the committed-artifact floor; smoke runs at smaller sizes skip it);
//! 2. out-of-core peak heap stays flat (±20%) as the trace grows 10×
//!    under a fixed resident budget;
//! 3. N workers draining a shared campaign directory produce a report
//!    byte-identical to one worker, at every worker count.
//!
//! `WAFFLE_SCALE_EVENTS` scales the trace (default 10_000_000; CI smoke
//! uses 1_000_000).

use std::path::PathBuf;
use std::time::Instant;

use waffle_analysis::{analyze_indexed, analyze_segments, analyze_unindexed, AnalyzerConfig};
use waffle_apps::all_apps;
use waffle_bench::{ScaleBenchReport, ScaleSweepPoint, WorkerRate};
use waffle_core::{Campaign, CampaignConfig, CellSpec, WorkOptions};
use waffle_mem::{AccessKind, ObjectId, SiteRegistry};
use waffle_sim::{SimTime, ThreadId, Workload};
use waffle_trace::{ClockPool, SegmentReader, Trace, TraceEvent, TraceIndex};
use waffle_vclock::ClockSnapshot;

/// Objects the events round-robin over (the shardable dimension).
const OBJECTS: u64 = 4096;
/// Interned chain snapshots; coprime with [`OBJECTS`] so window pairs
/// cycle through distinct (but bounded) clock-pair keys.
const CHAIN_CLOCKS: u64 = 509;
/// Entries per chain snapshot — wide clocks make the unmemoized
/// comparison honest for a many-thread (thread-pool) application.
const CHAIN_ENTRIES: u32 = 64;

/// Heap-byte counter wrapping the system allocator (peak-RSS proxy; the
/// workspace has no allocator introspection deps).
mod alloc_counter {
    #![allow(unsafe_code)] // GlobalAlloc is inherently unsafe; bench-only code.

    use std::alloc::{GlobalAlloc, Layout, System};
    use std::sync::atomic::{AtomicU64, Ordering};

    static LIVE: AtomicU64 = AtomicU64::new(0);
    static PEAK: AtomicU64 = AtomicU64::new(0);

    /// Pass-through allocator that tracks live and peak heap bytes.
    pub struct CountingAlloc;

    unsafe impl GlobalAlloc for CountingAlloc {
        unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
            let p = System.alloc(layout);
            if !p.is_null() {
                let live =
                    LIVE.fetch_add(layout.size() as u64, Ordering::Relaxed) + layout.size() as u64;
                PEAK.fetch_max(live, Ordering::Relaxed);
            }
            p
        }

        unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
            System.dealloc(ptr, layout);
            LIVE.fetch_sub(layout.size() as u64, Ordering::Relaxed);
        }
    }

    /// Restarts the peak watermark from the current live total.
    pub fn reset_peak() {
        PEAK.store(LIVE.load(Ordering::Relaxed), Ordering::Relaxed);
    }

    /// Peak live heap bytes since the last [`reset_peak`].
    pub fn peak() -> u64 {
        PEAK.load(Ordering::Relaxed)
    }
}

#[global_allocator]
static ALLOC: alloc_counter::CountingAlloc = alloc_counter::CountingAlloc;

/// Builds the synthetic trace directly: event `i` hits object `i %
/// OBJECTS` at `i+1` µs, cycling thread and access kind per round
/// (`Init, Use, Use, Dispose`). Ordinary objects carry chain snapshots
/// (totally ordered, so every cross-thread pair is pruned); the four
/// `obj % 1024 == 0` objects carry single-entry concurrent snapshots and
/// contribute the candidate pairs.
fn synthetic_trace(n: u64) -> Trace {
    let mut sites = SiteRegistry::new();
    let mut trios = Vec::with_capacity(OBJECTS as usize);
    for o in 0..OBJECTS {
        trios.push((
            sites.register(&format!("o{o}.init"), AccessKind::Init),
            sites.register(&format!("o{o}.use"), AccessKind::Use),
            sites.register(&format!("o{o}.dispose"), AccessKind::Dispose),
        ));
    }
    let mut clocks = ClockPool::new();
    let chain: Vec<_> = (0..CHAIN_CLOCKS)
        .map(|j| {
            clocks.intern(ClockSnapshot::from_entries(
                (0..CHAIN_ENTRIES).map(|t| (ThreadId(100 + t), (j + 1) * 8 + t as u64)),
            ))
        })
        .collect();
    let conc: Vec<_> = (0..4)
        .map(|t| clocks.intern(ClockSnapshot::from_entries([(ThreadId(t), 1)])))
        .collect();
    let mut events = Vec::with_capacity(n as usize);
    for i in 0..n {
        let obj = i % OBJECTS;
        let round = i / OBJECTS;
        let lane = (round % 4) as usize;
        let trio = trios[obj as usize];
        let (site, kind) = match lane {
            0 => (trio.0, AccessKind::Init),
            1 | 2 => (trio.1, AccessKind::Use),
            _ => (trio.2, AccessKind::Dispose),
        };
        events.push(TraceEvent {
            time: SimTime::from_us(i + 1),
            thread: ThreadId(lane as u32),
            site,
            obj: ObjectId(obj as u32),
            kind,
            dyn_index: round,
            clock: if obj.is_multiple_of(1024) {
                conc[lane]
            } else {
                chain[(i % CHAIN_CLOCKS) as usize]
            },
        });
    }
    Trace {
        workload: format!("bench.scale.{n}"),
        sites,
        events,
        forks: vec![],
        clocks,
        end_time: SimTime::from_us(n + 2),
    }
}

/// δ covering the three nearest same-object successors (spaced `OBJECTS`
/// µs apart), so the sweep visits ~3 window pairs per event.
fn config() -> AnalyzerConfig {
    AnalyzerConfig {
        delta: SimTime::from_us(OBJECTS * 7 / 2),
        ..AnalyzerConfig::default()
    }
}

/// Minimum wall-clock seconds of `f` over `passes` runs.
fn time_min<T>(passes: usize, mut f: impl FnMut() -> T) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..passes {
        let t0 = Instant::now();
        let out = f();
        best = best.min(t0.elapsed().as_secs_f64());
        drop(out);
    }
    best
}

/// Resolves campaign workload names against the seeded application suite.
fn resolve(name: &str) -> Option<Workload> {
    all_apps()
        .into_iter()
        .flat_map(|a| a.tests)
        .find(|t| t.workload.name == name)
        .map(|t| t.workload)
}

/// Runs the shared campaign grid with `workers` concurrent in-process
/// workers; returns (wall seconds, report bytes).
fn run_workers(dir: &PathBuf, cells: Vec<CellSpec>, workers: usize) -> (f64, Vec<u8>) {
    let campaign = Campaign::create(
        dir,
        CampaignConfig {
            max_detection_runs: 4,
            ..CampaignConfig::default()
        },
        cells,
    )
    .expect("campaign dir");
    let t0 = Instant::now();
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..workers)
            .map(|k| {
                let c = campaign.clone();
                s.spawn(move || {
                    c.work(
                        &WorkOptions {
                            worker: format!("w{k}"),
                            lease_secs: 3600,
                            poll_ms: 2,
                            ..WorkOptions::default()
                        },
                        resolve,
                    )
                    .expect("worker pass")
                })
            })
            .collect();
        for h in handles {
            h.join().expect("worker thread");
        }
    });
    let secs = t0.elapsed().as_secs_f64();
    let report = std::fs::read(dir.join("report.json")).expect("report written");
    (secs, report)
}

fn main() {
    let n: u64 = std::env::var("WAFFLE_SCALE_EVENTS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(10_000_000);
    assert!(n >= 100_000, "WAFFLE_SCALE_EVENTS must be at least 100000");
    let scratch = std::env::temp_dir().join(format!("waffle-scale-{}", std::process::id()));
    std::fs::create_dir_all(&scratch).expect("scratch dir");
    let config = config();

    // ---- Headline: unindexed scanner vs indexed scan, full size. ----
    println!("generating {n}-event trace…");
    let trace = synthetic_trace(n);
    let reference = analyze_unindexed(&trace, &config);
    let window_pairs = reference.stats.window_pairs;
    let reference_json = reference.to_json().expect("plan serializes");
    assert!(
        !reference.candidates.is_empty(),
        "the synthetic trace must produce candidates or the bench is vacuous"
    );
    drop(reference);
    let unindexed_secs = time_min(2, || analyze_unindexed(&trace, &config));
    println!(
        "unindexed: {:.2}s ({:.0} events/sec, {window_pairs} window pairs)",
        unindexed_secs,
        n as f64 / unindexed_secs
    );

    let index = TraceIndex::build(&trace);
    let istats = index.stats();
    let indexed_json = analyze_indexed(&index, &config, 1)
        .to_json()
        .expect("plan serializes");
    assert_eq!(
        indexed_json, reference_json,
        "indexed plan diverged from the reference scanner"
    );
    let indexed_secs = time_min(3, || analyze_indexed(&index, &config, 1));
    println!(
        "indexed scan: {:.2}s ({:.0} events/sec, {:.1}x)",
        indexed_secs,
        n as f64 / indexed_secs,
        unindexed_secs / indexed_secs
    );
    drop(index);
    drop(trace);

    // ---- Growth sweep: 1× / ~3× / 10×, fixed resident budget. ----
    let sizes = [n / 10, n * 32 / 100, n];
    let mut budget = 0u64;
    let mut sweep = Vec::new();
    let mut ooc_secs_full = 0.0;
    for (k, &size) in sizes.iter().enumerate() {
        let trace = synthetic_trace(size);
        let path = scratch.join(format!("scale-{size}.wseg"));
        TraceIndex::build(&trace).write_segments(&path).expect("segments write");
        drop(trace);
        let file_bytes = std::fs::metadata(&path).expect("segment file").len();
        if k == 0 {
            // Half the smallest size's column payload: every size point
            // streams in multiple batches of (nearly) the same max size,
            // so the resident cost is genuinely budget-shaped, not
            // trace-shaped.
            let reader = SegmentReader::open(&path).expect("segments open");
            let mem_bytes: u64 = reader
                .catalog()
                .class(waffle_trace::SegmentClass::MemOrder)
                .iter()
                .map(|m| m.bytes)
                .sum();
            budget = (mem_bytes / 2).max(1);
        }
        let mut reader = SegmentReader::open(&path).expect("segments open");
        let batches = waffle_analysis::ooc_stats(&reader, budget).batches;
        alloc_counter::reset_peak();
        let t0 = Instant::now();
        let plan = analyze_segments(&mut reader, &config, 1, budget).expect("ooc analysis");
        let secs = t0.elapsed().as_secs_f64();
        let peak = alloc_counter::peak();
        if size == n {
            ooc_secs_full = secs;
            assert_eq!(
                plan.to_json().expect("plan serializes"),
                reference_json,
                "out-of-core plan diverged from the reference scanner"
            );
        }
        drop(plan);
        drop(reader);
        println!(
            "ooc {size} events: {:.2}s ({:.0} events/sec), {batches} batches, peak {:.1} MiB",
            secs,
            size as f64 / secs,
            peak as f64 / (1 << 20) as f64
        );
        sweep.push(ScaleSweepPoint {
            events: size,
            file_bytes,
            batches,
            events_per_sec: size as f64 / secs,
            peak_alloc_bytes: peak,
        });
        std::fs::remove_file(&path).ok();
    }
    let peak_min = sweep.iter().map(|p| p.peak_alloc_bytes).min().unwrap().max(1);
    let peak_max = sweep.iter().map(|p| p.peak_alloc_bytes).max().unwrap();
    let sweep_peak_ratio = peak_max as f64 / peak_min as f64;

    // ---- Campaign worker scaling, byte-identical reports. ----
    let cells: Vec<CellSpec> = all_apps()
        .into_iter()
        .flat_map(|a| a.tests)
        .take(6)
        .map(|t| CellSpec::new(t.workload.name.clone(), "waffle", 2))
        .collect();
    let worker_counts = [1usize, 2, 4];
    let mut workers = Vec::new();
    let mut single_rate = 0.0;
    let mut single_report: Vec<u8> = Vec::new();
    for &w in &worker_counts {
        let dir = scratch.join(format!("campaign-w{w}"));
        let (secs, report) = run_workers(&dir, cells.clone(), w);
        let rate = cells.len() as f64 / secs;
        if w == 1 {
            single_rate = rate;
            single_report = report;
        } else {
            assert_eq!(
                report, single_report,
                "{w}-worker campaign report diverged from the single-worker report"
            );
        }
        println!("workers={w}: {:.2}s ({rate:.1} cells/sec)", secs);
        workers.push(WorkerRate {
            workers: w,
            cells: cells.len(),
            cells_per_sec: rate,
            speedup_vs_single: rate / single_rate,
        });
        std::fs::remove_dir_all(&dir).ok();
    }
    std::fs::remove_dir_all(&scratch).ok();

    let report = ScaleBenchReport {
        events: n,
        mem_objects: istats.mem_objects as u64,
        window_pairs,
        unindexed_events_per_sec: n as f64 / unindexed_secs,
        indexed_scan_events_per_sec: n as f64 / indexed_secs,
        ooc_scan_events_per_sec: n as f64 / ooc_secs_full,
        scan_speedup_vs_unindexed: unindexed_secs / indexed_secs,
        resident_budget_bytes: budget,
        sweep,
        sweep_peak_ratio,
        workers,
        available_parallelism: std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1),
    };

    assert!(
        report.sweep_peak_ratio <= 1.2,
        "out-of-core peak heap is not flat: max/min = {:.2} across a 10x growth sweep",
        report.sweep_peak_ratio
    );
    if n >= 10_000_000 {
        assert!(
            report.scan_speedup_vs_unindexed >= 10.0,
            "indexed scan is only {:.1}x the unindexed scanner at {n} events (need >= 10x)",
            report.scan_speedup_vs_unindexed
        );
    }

    let path = ScaleBenchReport::default_path();
    report.write(&path).expect("write scale bench report");
    println!("wrote {}", path.display());
}
