//! Figure 2: the two timing conditions.
//!
//! For an atomicity-style thread-safety violation, the delay must fall in
//! a *window* (T4-T1 > delay > T3-T2): too short misses the overlap, too
//! long overshoots it. For a MemOrder order violation, any delay beyond
//! the gap (delay > T4-T1) works — a *threshold*. The sweep prints trigger
//! outcomes for both bug types across delay lengths. (The TSV column uses
//! pure execution-window overlap, the figure's definition of "executing
//! concurrently"; TSVD's trap semantics would extend the upper edge.)

use waffle_mem::AccessKind;
use waffle_sim::time::{ms, us};
use waffle_sim::{
    AccessCtx, AccessRecord, Monitor, PreAction, SimConfig, SimTime, Simulator, Workload,
    WorkloadBuilder,
};

/// TSV workload: two unsafe calls on one object with windows [10,15] ms
/// and [40,45] ms — concurrent only if the first call is delayed by
/// 25–35 ms (T3-T2 = 25 ms, T4-T1 = 35 ms).
fn tsv_workload() -> Workload {
    let mut b = WorkloadBuilder::new("fig2.tsv");
    let o = b.object("dict");
    let started = b.event("s");
    let worker = b.script("worker", move |s| {
        s.wait(started)
            .pad(ms(10))
            .unsafe_call(o, "A.call1:1", ms(5));
    });
    let main = b.script("main", move |s| {
        s.init(o, "M.init:0", us(10))
            .fork(worker)
            .signal(started)
            .pad(ms(40))
            .unsafe_call(o, "M.call2:9", ms(5))
            .join_children();
    });
    b.main(main);
    b.build()
}

/// MemOrder workload: object used at 10 ms, disposed at 40 ms
/// (T4-T1 = 30 ms): any delay beyond 30 ms at the use triggers.
fn memorder_workload() -> Workload {
    let mut b = WorkloadBuilder::new("fig2.mo");
    let o = b.object("obj");
    let started = b.event("s");
    let worker = b.script("worker", move |s| {
        s.wait(started).pad(ms(10)).use_(o, "A.use:1", us(50));
    });
    let main = b.script("main", move |s| {
        s.init(o, "M.init:0", us(10))
            .fork(worker)
            .signal(started)
            .pad(ms(40))
            .dispose(o, "M.dispose:9", us(50))
            .join_children();
    });
    b.main(main);
    b.build()
}

/// Injects one delay at the worker's first access and records every
/// unsafe-call execution window.
#[derive(Default)]
struct Probe {
    len: SimTime,
    fired: bool,
    calls: Vec<(SimTime, SimTime)>,
}

impl Monitor for Probe {
    fn on_access_pre(&mut self, ctx: &AccessCtx<'_>) -> PreAction {
        if !self.fired
            && ctx.thread.0 != 0
            && matches!(ctx.kind, AccessKind::Use | AccessKind::UnsafeApiCall)
        {
            self.fired = true;
            return PreAction::Delay(self.len);
        }
        PreAction::Proceed
    }

    fn on_access_post(&mut self, rec: &AccessRecord) {
        if rec.kind == AccessKind::UnsafeApiCall {
            self.calls.push((rec.time, rec.time + ms(5)));
        }
    }
}

fn main() {
    println!("Figure 2: timing conditions (delay injected before the worker's access)");
    println!(
        "{:>10} | {:>22} | {:>22}",
        "delay(ms)", "TSV (window 25-35ms)", "MemOrder (thresh 30ms)"
    );
    let tsv = tsv_workload();
    let mo = memorder_workload();
    for delay_ms in [0u64, 5, 10, 20, 25, 28, 29, 30, 31, 32, 35, 40, 60, 100, 200] {
        let mut probe = Probe {
            len: ms(delay_ms),
            ..Probe::default()
        };
        let _ = Simulator::run(&tsv, SimConfig::with_seed(0).deterministic(), &mut probe);
        let overlap = probe.calls.len() == 2 && {
            let (a, b) = (probe.calls[0], probe.calls[1]);
            a.0 < b.1 && b.0 < a.1
        };
        let mut probe = Probe {
            len: ms(delay_ms),
            ..Probe::default()
        };
        let rm = Simulator::run(&mo, SimConfig::with_seed(0).deterministic(), &mut probe);
        println!(
            "{:>10} | {:>22} | {:>22}",
            delay_ms,
            if overlap { "CONCURRENT" } else { "no overlap" },
            if rm.manifested() {
                "NULL-REF EXCEPTION"
            } else {
                "clean"
            }
        );
    }
    println!();
    println!("(Paper shape: the atomicity violation triggers only inside the delay window;");
    println!(" the order violation triggers for every delay beyond the gap.)");
}
