//! `engine_rate`: wall-clock throughput of the simulator dispatch loop
//! (events/sec) and the parallel experiment engine (attempts/sec, speedup
//! versus sequential), written to `BENCH_core.json` so the figures can be
//! tracked across changes. Window per measurement: `WAFFLE_BENCH_MS`.

use criterion::{black_box, Criterion};
use waffle_bench::{BenchEntry, BenchReport, EngineRate};
use waffle_core::{Detector, DetectorConfig, ExperimentEngine, Tool};
use waffle_sim::{NullMonitor, SimConfig, SimTime, Simulator, Workload, WorkloadBuilder};

/// Attempts per engine measurement (kept small: each attempt is a full
/// prepare-and-detect cycle).
const ATTEMPTS: u32 = 8;

/// A dispatch-heavy workload: two worker threads each touching the shared
/// object through hundreds of distinct sites, so the measurement is
/// dominated by the simulator's ready-queue and access bookkeeping.
fn dispatch_workload() -> Workload {
    let mut b = WorkloadBuilder::new("bench.engine_rate.dispatch");
    let o = b.object("o");
    let mut workers = Vec::new();
    for t in 0..2 {
        workers.push(b.script(format!("worker{t}"), move |s| {
            for i in 0..300 {
                s.use_(o, &format!("W{t}.use:{i}"), SimTime::from_us(1));
            }
        }));
    }
    let main = b.script("main", move |s| {
        s.init(o, "M.init:1", SimTime::from_us(1));
        for w in &workers {
            s.fork(*w);
        }
        s.join_children().dispose(o, "M.dispose:9", SimTime::from_us(1));
    });
    b.main(main);
    b.build()
}

/// The workload the engine measurement detects against: Bug-16's
/// heavy-churn MQTT.Net input. Each attempt costs enough simulation work
/// that fan-out wins over the per-worker thread-spawn cost — the regime
/// the engine exists for (toy microsecond workloads lose to spawn
/// overhead and stay on the sequential path in practice).
fn racy_workload() -> Workload {
    waffle_apps::all_apps()
        .into_iter()
        .find(|a| a.bug_workload(16).is_some())
        .expect("Bug-16 app exists")
        .bug_workload(16)
        .expect("Bug-16 workload exists")
        .clone()
}

fn main() {
    let mut c = Criterion::default();

    let dispatch = dispatch_workload();
    let events_per_run =
        Simulator::run(&dispatch, SimConfig::with_seed(0), &mut NullMonitor).ops_executed;
    c.bench_function("sim_dispatch", |b| {
        b.iter(|| Simulator::run(black_box(&dispatch), SimConfig::with_seed(0), &mut NullMonitor))
    });

    let racy = racy_workload();
    let det = Detector::with_config(
        Tool::waffle(),
        DetectorConfig {
            max_detection_runs: 4,
            ..DetectorConfig::default()
        },
    );
    // One sequential reference experiment (fixed seed ladder) for the
    // report's headline telemetry counters.
    let telemetry = ExperimentEngine::new(1)
        .run_experiment(&det, &racy, ATTEMPTS)
        .telemetry
        .counters;
    let mut job_counts = vec![1usize, 2];
    let avail = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    if avail > 2 {
        job_counts.push(avail);
    }
    for &jobs in &job_counts {
        let engine = ExperimentEngine::new(jobs);
        c.bench_function(&format!("engine_attempts_jobs{jobs}"), |b| {
            b.iter(|| engine.run_experiment(black_box(&det), black_box(&racy), ATTEMPTS))
        });
    }

    let results = c.results();
    let mean = |name: &str| {
        results
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, m)| *m)
            .expect("bench ran")
    };
    let seq_mean = mean("engine_attempts_jobs1");
    let report = BenchReport {
        sim_events_per_sec: events_per_run as f64 * 1e9 / mean("sim_dispatch"),
        engine: job_counts
            .iter()
            .map(|&jobs| {
                let m = mean(&format!("engine_attempts_jobs{jobs}"));
                EngineRate {
                    jobs,
                    attempts_per_sec: f64::from(ATTEMPTS) * 1e9 / m,
                    speedup_vs_sequential: seq_mean / m,
                }
            })
            .collect(),
        benches: results
            .iter()
            .map(|(name, mean_ns)| BenchEntry {
                name: name.clone(),
                mean_ns: *mean_ns,
            })
            .collect(),
        telemetry,
    };
    let path = BenchReport::default_path();
    report.write(&path).expect("write bench report");
    println!("wrote {}", path.display());
}
