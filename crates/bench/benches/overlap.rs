//! The §3.3 delay-overlap measurement: the complement of the ratio between
//! the time projection of all delays and the total delay injected, per
//! application, for TSVD (TSV sites) versus WaffleBasic (MemOrder sites).
//!
//! Also reports the §3.3 dynamic-instance observation: the median number
//! of dynamic instances per object-initialization site.

use waffle_apps::all_apps;
use waffle_inject::{BasicState, TsvdPolicy, TsvdState, WaffleBasicPolicy};
use waffle_mem::AccessKind;
use waffle_sim::{SimConfig, Simulator};
use waffle_trace::{TraceRecorder, TraceStats};

fn main() {
    println!("Section 3.3: delay overlap ratios (two runs per test input; run 2 measured)");
    println!(
        "{:<20} | {:>12} {:>14} | {:>16}",
        "App", "Tsvd overlap", "Basic overlap", "median init inst"
    );
    for app in all_apps() {
        let mut tsvd_ratios = Vec::new();
        let mut basic_ratios = Vec::new();
        let mut medians = Vec::new();
        for t in &app.tests {
            let w = &t.workload;
            // TSVD: identification run then measured run.
            let mut st = TsvdState::default();
            for seed in [1u64, 2] {
                let mut p = TsvdPolicy::new(st, seed);
                let r = Simulator::run(w, SimConfig::with_seed(seed), &mut p);
                st = p.into_state();
                if seed == 2 && !r.delays.is_empty() {
                    tsvd_ratios.push(r.delay_overlap_ratio());
                }
            }
            // WaffleBasic: same protocol.
            let mut st = BasicState::default();
            for seed in [1u64, 2] {
                let mut p = WaffleBasicPolicy::new(st, seed);
                let r = Simulator::run(w, SimConfig::with_seed(seed), &mut p);
                st = p.into_state();
                if seed == 2 && !r.delays.is_empty() {
                    basic_ratios.push(r.delay_overlap_ratio());
                }
            }
            // Dynamic instances of init sites (delay-free trace).
            let mut rec = TraceRecorder::new(w);
            let _ = Simulator::run(w, SimConfig::with_seed(1), &mut rec);
            let trace = rec.into_trace();
            let stats = TraceStats::compute(&trace);
            if let Some(m) = stats.median_dyn_instances(&trace, |k| k == AccessKind::Init) {
                medians.push(m);
            }
        }
        let avg = |v: &[f64]| {
            if v.is_empty() {
                0.0
            } else {
                v.iter().sum::<f64>() / v.len() as f64 * 100.0
            }
        };
        medians.sort_unstable();
        let med = medians.get(medians.len() / 2).copied().unwrap_or(0);
        println!(
            "{:<20} | {:>11.1}% {:>13.1}% | {:>16}",
            app.name,
            avg(&tsvd_ratios),
            avg(&basic_ratios),
            med
        );
    }
    println!();
    println!("(Paper shape: TSVD overlap <1%-15%; WaffleBasic overlap 2-28%; the median");
    println!(" number of dynamic instances for object initializations is 2.)");
}
