//! Table 2: average number of unique static instrumentation and delay-
//! injection sites for thread-safety violations (TSV) versus MemOrder
//! bugs (MO), across all test inputs per application.
//!
//! Instrumentation sites are static sites of each class that executed;
//! injection sites are the distinct locations the respective tool decides
//! to delay (the Waffle plan's delay locations for MO; TSVD's candidate
//! set after an identification run for TSV).

use waffle_analysis::{analyze, AnalyzerConfig};
use waffle_apps::all_apps;
use waffle_inject::{TsvdPolicy, TsvdState};
use waffle_sim::{SimConfig, Simulator};
use waffle_trace::{TraceRecorder, TraceStats};

fn main() {
    println!("Table 2: unique static instrumentation and injection sites (averages per test input)");
    println!(
        "{:<20} | {:>9} {:>9} | {:>9} {:>9}",
        "App", "Instr TSV", "Instr MO", "Inj TSV", "Inj MO"
    );
    for app in all_apps() {
        let mut instr_tsv = 0usize;
        let mut instr_mo = 0usize;
        let mut inj_tsv = 0usize;
        let mut inj_mo = 0usize;
        let n = app.tests.len().max(1);
        for t in &app.tests {
            let w = &t.workload;
            // MO side: preparation run + analysis.
            let mut rec = TraceRecorder::new(w);
            let _ = Simulator::run(w, SimConfig::with_seed(1), &mut rec);
            let trace = rec.into_trace();
            let stats = TraceStats::compute(&trace);
            instr_mo += stats.mem_order_sites;
            instr_tsv += stats.tsv_sites;
            let plan = analyze(&trace, &AnalyzerConfig::default());
            inj_mo += plan.delay_len.len();
            // TSV side: one TSVD identification run.
            let mut tsvd = TsvdPolicy::new(TsvdState::default(), 1);
            let _ = Simulator::run(w, SimConfig::with_seed(1), &mut tsvd);
            inj_tsv += tsvd.into_state().delay_sites();
        }
        println!(
            "{:<20} | {:>9.1} {:>9.1} | {:>9.1} {:>9.1}",
            app.name,
            instr_tsv as f64 / n as f64,
            instr_mo as f64 / n as f64,
            inj_tsv as f64 / n as f64,
            inj_mo as f64 / n as f64,
        );
    }
    println!();
    println!("(Paper shape: MO instrumentation sites are ~10x or more the TSV sites for");
    println!(" most applications, and MO injection sites dominate TSV injection sites.)");
}
