//! Extension study (§8): the preparation-run design applied back to
//! thread-safety violations. Compares online TSVD (fixed 100 ms delays)
//! against plan-guided WaffleTSV (measured-gap delays) on the suite's
//! thread-unsafe dictionary workloads: runs to exposure and injected
//! delay budget.

use waffle_analysis::analyze_tsv;
use waffle_apps::all_apps;
use waffle_inject::{DecayState, TsvdPolicy, TsvdState, WaffleTsvPolicy};
use waffle_sim::time::ms;
use waffle_sim::{SimConfig, SimTime, Simulator, Workload};
use waffle_trace::TraceRecorder;

fn tsvd_runs(w: &Workload, cap: u64) -> (Option<u64>, SimTime) {
    let mut state = TsvdState::default();
    let mut total = SimTime::ZERO;
    for run in 1..=cap {
        let mut p = TsvdPolicy::new(state, run);
        let r = Simulator::run(w, SimConfig::with_seed(run), &mut p);
        state = p.into_state();
        total += r.total_delay();
        if !r.tsv_violations.is_empty() {
            return (Some(run), total);
        }
    }
    (None, total)
}

fn waffle_tsv_runs(w: &Workload, cap: u64) -> (Option<u64>, SimTime) {
    let mut rec = TraceRecorder::new(w);
    let _ = Simulator::run(w, SimConfig::with_seed(0), &mut rec);
    let plan = analyze_tsv(&rec.into_trace(), ms(100), ms(1));
    let mut decay = DecayState::default();
    let mut total = SimTime::ZERO;
    for run in 1..=cap {
        let mut p = WaffleTsvPolicy::new(plan.clone(), decay, run);
        let r = Simulator::run(w, SimConfig::with_seed(run), &mut p);
        decay = p.into_decay();
        total += r.total_delay();
        if !r.tsv_violations.is_empty() {
            // The preparation run counts toward the total.
            return (Some(run + 1), total);
        }
    }
    (None, total)
}

/// A two-call workload with a configurable start-to-start gap.
fn gap_workload(gap_ms: u64) -> Workload {
    use waffle_sim::time::us;
    use waffle_sim::WorkloadBuilder;
    let mut b = WorkloadBuilder::new(format!("wtsv.gap{gap_ms}"));
    let dict = b.object("dict");
    let started = b.event("s");
    let worker = b.script("worker", move |s| {
        s.wait(started)
            .pad(ms(1))
            .unsafe_call(dict, "Worker.Add:3", ms(1));
    });
    let main = b.script("main", move |s| {
        s.init(dict, "M.ctor:1", us(20))
            .fork(worker)
            .signal(started)
            .pad(ms(1) + ms(gap_ms))
            .unsafe_call(dict, "Main.Get:7", ms(1))
            .join_children();
    });
    b.main(main);
    b.build()
}

fn main() {
    println!("Extension: plan-guided TSV detection vs online TSVD (cap 10 runs)");
    println!(
        "{:<38} | {:>10} {:>12} | {:>10} {:>12}",
        "workload", "TSVD runs", "delay cost", "WTSV runs", "delay cost"
    );
    for app in all_apps() {
        for t in &app.tests {
            if t.workload.tsv_sites() == 0 || t.seeded_bug.is_some() {
                continue;
            }
            let (tr, td) = tsvd_runs(&t.workload, 10);
            let (wr, wd) = waffle_tsv_runs(&t.workload, 10);
            let fmt = |r: Option<u64>| r.map(|v| v.to_string()).unwrap_or("-".into());
            println!(
                "{:<38} | {:>10} {:>12} | {:>10} {:>12}",
                t.workload.name,
                fmt(tr),
                td.to_string(),
                fmt(wr),
                wd.to_string()
            );
        }
    }
    println!();
    println!("Gap sweep (two racing calls; budget = total delay injected to exposure):");
    println!(
        "{:>10} | {:>10} {:>12} | {:>10} {:>12}",
        "gap(ms)", "TSVD runs", "delay cost", "WTSV runs", "delay cost"
    );
    for gap in [5u64, 20, 50, 98] {
        let w = gap_workload(gap);
        let (tr, td) = tsvd_runs(&w, 10);
        let (wr, wd) = waffle_tsv_runs(&w, 10);
        let fmt = |r: Option<u64>| r.map(|v| v.to_string()).unwrap_or("-".into());
        println!(
            "{:>10} | {:>10} {:>12} | {:>10} {:>12}",
            gap,
            fmt(tr),
            td.to_string(),
            fmt(wr),
            wd.to_string()
        );
    }
    println!();
    println!("(Shape: both expose the overlaps. The planned delay equals the measured gap,");
    println!(" so WaffleTSV's budget scales with the gap while TSVD pays its fixed 100ms");
    println!(" per injection regardless — the §4.3 trade-off, transported back to the");
    println!(" atomicity-violation timing condition. On the suite's dictionary workloads");
    println!(" the calls sit ~98ms apart, so the budgets coincide there.)");
}
