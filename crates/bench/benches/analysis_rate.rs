//! `analysis_rate`: throughput of the columnar trace index and the fused
//! analysis pipeline versus the reference pre-index scanner, written to
//! `BENCH_analysis.json` (`WAFFLE_BENCH_ANALYSIS_OUT` overrides the path).
//!
//! The input is a ≥ 100k-event synthetic trace recorded from a real
//! simulator run: four worker threads cycling over a pool of shared
//! objects, so every object's timeline interleaves cross-thread accesses
//! and the near-miss sweep has genuine window pairs to visit. The indexed
//! measurements *include* the index-build cost — the honest end-to-end
//! comparison, since the unindexed scanner starts from a raw trace too.
//!
//! A counting global allocator tracks peak live heap bytes during each
//! analysis flavor as a peak-RSS proxy (the workspace has no jemalloc-style
//! introspection and the bench must not add dependencies).

use criterion::{black_box, Criterion};
use waffle_analysis::{analyze_indexed, analyze_unindexed, AnalyzerConfig};
use waffle_bench::{AnalysisBenchReport, AnalysisRate, BenchEntry};
use waffle_sim::{SimConfig, SimTime, Simulator, Workload, WorkloadBuilder};
use waffle_trace::{TraceIndex, TraceRecorder};

/// Worker threads in the synthetic workload.
const THREADS: usize = 4;
/// Shared objects the workers cycle over (the shardable dimension).
const OBJECTS: usize = 64;
/// Passes each worker makes over the whole object pool.
const ROUNDS: usize = 400;

/// Heap-byte counter wrapping the system allocator. Peak live bytes are
/// the report's RSS proxy; `Relaxed` ordering is fine because the bench
/// reads the counters only between single-threaded measurement sections.
mod alloc_counter {
    #![allow(unsafe_code)] // GlobalAlloc is inherently unsafe; this is bench-only code.

    use std::alloc::{GlobalAlloc, Layout, System};
    use std::sync::atomic::{AtomicU64, Ordering};

    static LIVE: AtomicU64 = AtomicU64::new(0);
    static PEAK: AtomicU64 = AtomicU64::new(0);

    /// Pass-through allocator that tracks live and peak heap bytes.
    pub struct CountingAlloc;

    unsafe impl GlobalAlloc for CountingAlloc {
        unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
            let p = System.alloc(layout);
            if !p.is_null() {
                let live =
                    LIVE.fetch_add(layout.size() as u64, Ordering::Relaxed) + layout.size() as u64;
                PEAK.fetch_max(live, Ordering::Relaxed);
            }
            p
        }

        unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
            System.dealloc(ptr, layout);
            LIVE.fetch_sub(layout.size() as u64, Ordering::Relaxed);
        }
    }

    /// Restarts the peak watermark from the current live total.
    pub fn reset_peak() {
        PEAK.store(LIVE.load(Ordering::Relaxed), Ordering::Relaxed);
    }

    /// Peak live heap bytes since the last [`reset_peak`].
    pub fn peak() -> u64 {
        PEAK.load(Ordering::Relaxed)
    }
}

#[global_allocator]
static ALLOC: alloc_counter::CountingAlloc = alloc_counter::CountingAlloc;

/// Builds the synthetic workload: `main` inits every object, forks the
/// workers, joins them, and disposes everything; each worker cycles over
/// the object pool `ROUNDS` times through per-(worker, object) sites.
fn synthetic_workload() -> Workload {
    let mut b = WorkloadBuilder::new("bench.analysis_rate.synthetic");
    let objects = b.objects("o", OBJECTS as u32);
    let mut workers = Vec::new();
    for t in 0..THREADS {
        let objects = objects.clone();
        workers.push(b.script(format!("worker{t}"), move |s| {
            for _ in 0..ROUNDS {
                for (k, o) in objects.iter().enumerate() {
                    s.use_(*o, &format!("W{t}.o{k}.use"), SimTime::from_us(100));
                }
            }
        }));
    }
    let objects_main = objects.clone();
    let main = b.script("main", move |s| {
        for (k, o) in objects_main.iter().enumerate() {
            s.init(*o, &format!("M.o{k}.init"), SimTime::from_us(10));
        }
        for w in &workers {
            s.fork(*w);
        }
        s.join_children();
        for (k, o) in objects_main.iter().enumerate() {
            s.dispose(*o, &format!("M.o{k}.dispose"), SimTime::from_us(10));
        }
    });
    b.main(main);
    b.build()
}

fn main() {
    let mut c = Criterion::default();

    let workload = synthetic_workload();
    let mut rec = TraceRecorder::new(&workload);
    Simulator::run(&workload, SimConfig::with_seed(0), &mut rec);
    let trace = rec.into_trace();
    assert!(
        trace.events.len() >= 100_000,
        "synthetic trace must hold >= 100k events, got {}",
        trace.events.len()
    );

    // δ tightened from the paper's 100 ms so each event's window holds a
    // handful of neighbors, matching the near-miss density of the seeded
    // application traces rather than quadratic all-pairs blowup.
    let config = AnalyzerConfig {
        delta: SimTime::from_ms(2),
        ..AnalyzerConfig::default()
    };

    // Equivalence spot-check before timing anything: both flavors must
    // produce byte-identical plans on this trace or the speedup is fiction.
    let reference = analyze_unindexed(&trace, &config);
    let index = TraceIndex::build(&trace);
    let stats = index.stats();
    for jobs in [1usize, 2] {
        let plan = analyze_indexed(&index, &config, jobs);
        assert_eq!(
            plan.to_json().expect("plan serializes"),
            reference.to_json().expect("plan serializes"),
            "indexed plan (jobs={jobs}) diverged from the reference scanner"
        );
    }
    let window_pairs = reference.stats.window_pairs;
    drop(index);

    c.bench_function("index_build", |b| {
        b.iter(|| TraceIndex::build(black_box(&trace)))
    });
    c.bench_function("analyze_unindexed", |b| {
        b.iter(|| analyze_unindexed(black_box(&trace), black_box(&config)))
    });
    let job_counts = [1usize, 2];
    for &jobs in &job_counts {
        c.bench_function(&format!("analyze_indexed_jobs{jobs}"), |b| {
            b.iter(|| {
                let index = TraceIndex::build(black_box(&trace));
                analyze_indexed(&index, black_box(&config), jobs)
            })
        });
    }

    // Peak-heap watermarks for one pass of each flavor, outside the timed
    // sections so the allocator bookkeeping cannot skew the means.
    alloc_counter::reset_peak();
    let plan = analyze_unindexed(&trace, &config);
    drop(plan);
    let peak_unindexed = alloc_counter::peak();
    alloc_counter::reset_peak();
    let index = TraceIndex::build(&trace);
    let plan = analyze_indexed(&index, &config, 1);
    drop(plan);
    drop(index);
    let peak_indexed = alloc_counter::peak();

    let results = c.results();
    let mean = |name: &str| {
        results
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, m)| *m)
            .expect("bench ran")
    };
    let events = stats.events as f64;
    let unindexed_mean = mean("analyze_unindexed");
    let report = AnalysisBenchReport {
        events: stats.events as u64,
        mem_objects: stats.mem_objects as u64,
        distinct_clocks: stats.distinct_clocks as u64,
        window_pairs,
        index_build_events_per_sec: events * 1e9 / mean("index_build"),
        unindexed_events_per_sec: events * 1e9 / unindexed_mean,
        indexed: job_counts
            .iter()
            .map(|&jobs| {
                let m = mean(&format!("analyze_indexed_jobs{jobs}"));
                AnalysisRate {
                    jobs,
                    events_per_sec: events * 1e9 / m,
                    pairs_per_sec: window_pairs as f64 * 1e9 / m,
                    speedup_vs_unindexed: unindexed_mean / m,
                }
            })
            .collect(),
        peak_alloc_unindexed_bytes: peak_unindexed,
        peak_alloc_indexed_bytes: peak_indexed,
        available_parallelism: std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1),
        benches: results
            .iter()
            .map(|(name, mean_ns)| BenchEntry {
                name: name.clone(),
                mean_ns: *mean_ns,
            })
            .collect(),
    };
    let path = AnalysisBenchReport::default_path();
    report.write(&path).expect("write analysis bench report");
    println!("wrote {}", path.display());
    for r in &report.indexed {
        println!(
            "indexed jobs={}: {:.0} events/sec, {:.0} pairs/sec, {:.2}x vs unindexed",
            r.jobs, r.events_per_sec, r.pairs_per_sec, r.speedup_vs_unindexed
        );
    }
}
