//! Table 6: cumulative number and duration of delays injected across all
//! test inputs (one detection run per input).

use waffle_apps::all_apps;
use waffle_core::{Detector, DetectorConfig, Tool};
use waffle_sim::SimTime;

fn main() {
    println!("Table 6: cumulative delays across all test inputs (one detection run per input)");
    println!(
        "{:<20} | {:>9} {:>14} | {:>9} {:>14}",
        "App", "Basic #", "Basic dur(ms)", "Waffle #", "Waffle dur(ms)"
    );
    let cfg = DetectorConfig {
        // One detection run per input: WaffleBasic's delays only begin once
        // candidates exist, so its measured run is the second (the paper's
        // tools likewise carry state into the measured run).
        max_detection_runs: 2,
        ..DetectorConfig::default()
    };
    for app in all_apps() {
        if app.name == "LiteDB" {
            continue;
        }
        let mut basic_n = 0u64;
        let mut basic_d = SimTime::ZERO;
        let mut basic_timeouts = 0u32;
        let mut basic_runs = 0u32;
        let mut waffle_n = 0u64;
        let mut waffle_d = SimTime::ZERO;
        for t in &app.tests {
            let b = Detector::with_config(Tool::waffle_basic(), cfg.clone()).detect(&t.workload, 1);
            if let Some(last) = b.detection_runs.last() {
                basic_n += last.delays;
                basic_d += last.delay_total;
                basic_runs += 1;
                if last.timed_out {
                    basic_timeouts += 1;
                }
            }
            let w = Detector::with_config(Tool::waffle(), cfg.clone()).detect(&t.workload, 1);
            if let Some(first) = w.detection_runs.first() {
                waffle_n += first.delays;
                waffle_d += first.delay_total;
            }
        }
        let timeout = basic_timeouts * 2 > basic_runs;
        if timeout {
            println!(
                "{:<20} | {:>9} {:>14} | {:>9} {:>14}",
                app.name,
                "TimeOut",
                "TimeOut",
                waffle_n,
                waffle_d.as_ms()
            );
        } else {
            println!(
                "{:<20} | {:>9} {:>14} | {:>9} {:>14}",
                app.name,
                basic_n,
                basic_d.as_ms(),
                waffle_n,
                waffle_d.as_ms()
            );
        }
    }
}
