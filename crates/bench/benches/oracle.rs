//! `oracle`: sleep-set partial-order reduction vs the naive bounded
//! explorer, written to `BENCH_oracle.json` (`WAFFLE_BENCH_ORACLE_OUT`
//! overrides the path).
//!
//! Two populations, each explored reduced and naive at bounds 2/3/4 under
//! every memory model:
//!
//! * `generated` — fixed generator seeds, the same distribution the fuzz
//!   sweeps run; small per-case spaces, so this population mostly pins
//!   verdict identity across a broad shape mix;
//! * `grid` — independent per-thread objects, the drain-rich shape where
//!   interleaving explosion actually lives: under a weak model every
//!   thread's buffered stores commute with every other thread's, and the
//!   naive explorer enumerates all their orders.
//!
//! Every single case asserts reduced verdict == naive verdict before the
//! report is written — the ratios are measurements of a
//! verdict-preserving optimization, never of a lossy one.
//!
//! Asserted claims:
//! 1. grid under TSO at bound 3 explores ≥5× fewer frontier states
//!    reduced than naive (the committed-artifact floor);
//! 2. one full exploration performs fewer allocation events than half its
//!    frontier states — the hot loop (clone-on-branch frames, reused
//!    encode scratch, direct-mapped memo) allocates only on depth growth
//!    and table resize, not per state.

use std::time::Instant;

use waffle_bench::{OracleBenchReport, OracleBenchRow};
use waffle_fuzz::{explore, generate_case_for_model, OracleConfig, OracleReport};
use waffle_sim::time::us;
use waffle_sim::{MemoryModel, Workload, WorkloadBuilder};

/// Allocation-event counter wrapping the system allocator.
mod alloc_counter {
    #![allow(unsafe_code)] // GlobalAlloc is inherently unsafe; bench-only code.

    use std::alloc::{GlobalAlloc, Layout, System};
    use std::sync::atomic::{AtomicU64, Ordering};

    static EVENTS: AtomicU64 = AtomicU64::new(0);

    /// Pass-through allocator that counts allocation calls.
    pub struct CountingAlloc;

    unsafe impl GlobalAlloc for CountingAlloc {
        unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
            EVENTS.fetch_add(1, Ordering::Relaxed);
            System.alloc(layout)
        }

        unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
            System.dealloc(ptr, layout);
        }

        unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
            EVENTS.fetch_add(1, Ordering::Relaxed);
            System.realloc(ptr, layout, new_size)
        }
    }

    /// Allocation events since process start.
    pub fn events() -> u64 {
        EVENTS.load(Ordering::Relaxed)
    }
}

#[global_allocator]
static ALLOC: alloc_counter::CountingAlloc = alloc_counter::CountingAlloc;

/// Generator seeds per model for the `generated` population.
const SEEDS: u64 = 10;
/// Worker threads in the `grid` workload.
const GRID_THREADS: u32 = 5;
/// Preemption bounds swept.
const BOUNDS: [u32; 3] = [2, 3, 4];
/// Shared state cap (never reached by these populations; identical on
/// both sides so a hypothetical truncation would still compare equal).
const CAP: u64 = 2_000_000;

fn model_name(m: MemoryModel) -> &'static str {
    match m {
        MemoryModel::Sc => "sc",
        MemoryModel::Tso => "tso",
        MemoryModel::Pso => "pso",
    }
}

/// Independent per-thread objects: `n` workers each init + use their own
/// object, main forks all and joins. Every cross-thread interleaving of
/// accesses (and, weakly, buffered-store drains) commutes.
fn grid(n: u32) -> Workload {
    let mut b = WorkloadBuilder::new("bench.oracle_grid");
    let mut scripts = Vec::new();
    for i in 0..n {
        let o = b.object(&format!("obj{i}"));
        scripts.push(b.script(format!("w{i}"), move |s| {
            s.init(o, "w.init", us(5)).use_(o, "w.use", us(5));
        }));
    }
    let m = b.script("main", move |s| {
        for &sc in &scripts {
            s.fork(sc);
        }
        s.join_children();
    });
    b.main(m);
    b.build()
}

fn run(w: &Workload, model: MemoryModel, bound: u32, reduce: bool) -> OracleReport {
    explore(
        w,
        &OracleConfig {
            preemption_bound: bound,
            max_states: CAP,
            memory: model,
            reduce,
        },
    )
}

fn edges(r: &OracleReport) -> u64 {
    r.states_explored + r.memo_hits + r.revisits
}

/// Explores every workload reduced and naive, asserts verdict identity
/// per case, and aggregates one row.
fn row(
    population: &str,
    workloads: &[Workload],
    model: MemoryModel,
    bound: u32,
    verdicts_checked: &mut u64,
) -> OracleBenchRow {
    let mut r_states = 0u64;
    let mut n_states = 0u64;
    let mut r_edges = 0u64;
    let mut n_edges = 0u64;
    let mut prunes = 0u64;
    let mut hits = 0u64;
    let mut r_wall = 0u64;
    let mut n_wall = 0u64;
    for w in workloads {
        let t0 = Instant::now();
        let r = run(w, model, bound, true);
        r_wall += t0.elapsed().as_nanos() as u64;
        let t1 = Instant::now();
        let n = run(w, model, bound, false);
        n_wall += t1.elapsed().as_nanos() as u64;
        assert_eq!(
            r.verdict, n.verdict,
            "verdict diverged on {} ({} bound {bound})",
            w.name,
            model_name(model)
        );
        *verdicts_checked += 1;
        r_states += r.states_explored;
        n_states += n.states_explored;
        r_edges += edges(&r);
        n_edges += edges(&n);
        prunes += r.sleep_prunes;
        hits += r.memo_hits;
    }
    OracleBenchRow {
        population: population.to_string(),
        model: model_name(model).to_string(),
        preemption_bound: bound,
        cases: workloads.len() as u64,
        reduced_states: r_states,
        naive_states: n_states,
        state_ratio: n_states as f64 / r_states as f64,
        reduced_edges: r_edges,
        naive_edges: n_edges,
        edge_ratio: n_edges as f64 / r_edges as f64,
        sleep_prunes: prunes,
        memo_hits: hits,
        reduced_wall_ns: r_wall,
        naive_wall_ns: n_wall,
    }
}

fn main() {
    let models = [MemoryModel::Sc, MemoryModel::Tso, MemoryModel::Pso];
    let mut rows = Vec::new();
    let mut verdicts_checked = 0u64;
    let mut headline = 0.0f64;

    let grid_w = [grid(GRID_THREADS)];
    for model in models {
        let generated: Vec<Workload> = (0..SEEDS)
            .map(|s| generate_case_for_model(s, model).workload)
            .collect();
        for bound in BOUNDS {
            rows.push(row(
                "generated",
                &generated,
                model,
                bound,
                &mut verdicts_checked,
            ));
            let g = row("grid", &grid_w, model, bound, &mut verdicts_checked);
            if model == MemoryModel::Tso && bound == 3 {
                headline = g.state_ratio;
            }
            rows.push(g);
        }
    }

    assert!(
        headline >= 5.0,
        "grid tso bound-3 state reduction {headline:.2}x is under the 5x floor"
    );

    // Allocation probe: a full naive exploration of the grid under TSO at
    // bound 3 visits thousands of states; the explorer may allocate on
    // depth growth, memo resize, and witness assembly — never per state.
    let before = alloc_counter::events();
    let probe = run(&grid_w[0], MemoryModel::Tso, 3, false);
    let alloc_events = alloc_counter::events() - before;
    assert!(
        alloc_events < probe.states_explored / 2,
        "exploration allocated {alloc_events} times over {} states — the hot loop allocates",
        probe.states_explored
    );

    for r in &rows {
        println!(
            "{:>9} {:>3} b{}: states {} vs {} ({:.2}x), edges {} vs {} ({:.2}x), \
             prunes {}, wall {:.1}ms vs {:.1}ms",
            r.population,
            r.model,
            r.preemption_bound,
            r.reduced_states,
            r.naive_states,
            r.state_ratio,
            r.reduced_edges,
            r.naive_edges,
            r.edge_ratio,
            r.sleep_prunes,
            r.reduced_wall_ns as f64 / 1e6,
            r.naive_wall_ns as f64 / 1e6,
        );
    }
    println!(
        "headline (grid tso b3): {headline:.2}x fewer frontier states; \
         alloc probe: {alloc_events} allocation events over {} states",
        probe.states_explored
    );

    let report = OracleBenchReport {
        rows,
        headline_state_ratio: headline,
        alloc_probe_events: alloc_events,
        alloc_probe_states: probe.states_explored,
        verdicts_checked,
    };
    let path = OracleBenchReport::default_path();
    report.write(&path).expect("write oracle bench report");
    println!("wrote {}", path.display());
}
