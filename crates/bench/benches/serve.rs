//! `serve`: streamed-session ingest throughput and bounded resident
//! memory, written to `BENCH_serve.json` (`WAFFLE_BENCH_SERVE_OUT`
//! overrides the path).
//!
//! This drives the serve-side hot path without the socket: client frames
//! are encoded and decoded through the real wire codec, pushed through a
//! [`SessionIndexBuilder`], sealed into generation segment files at a
//! fixed threshold, folded into an [`IncrementalAnalysis`] as each
//! generation seals, and finished through compaction plus the streaming
//! interference pass — exactly the per-session work `waffle serve` does,
//! minus kernel socket copies (which a loopback Unix socket on a 1-core
//! box would measure instead of the engine).
//!
//! The stream shape mirrors the `scale` bench: 4096 objects round-robined
//! over four threads, per-object site trios, heavily-reused interned chain
//! snapshots with a handful of genuinely concurrent objects carrying the
//! candidate pairs.
//!
//! Two claims, asserted before the report is written:
//! 1. sustained ingest meets the floor (`WAFFLE_SERVE_MIN_RATE`, default
//!    1M events/sec) while the finished report stays byte-identical to
//!    the batch analyzer over the same trace;
//! 2. the streaming loop's peak heap is seal-threshold-shaped, not
//!    session-shaped: flat (±25%) as the stream grows 4×. Events are
//!    generated batch-by-batch (never a whole-trace vector), so the
//!    measured resident cost is the builder's pending window, the
//!    per-generation seal output, and the fold's δ-window tails.
//!
//! `WAFFLE_SERVE_EVENTS` scales the headline stream (default 2_000_000).

use std::path::{Path, PathBuf};
use std::time::Instant;

use waffle_analysis::{analyze_jobs, analyze_tsv_indexed, AnalyzerConfig, IncrementalAnalysis};
use waffle_bench::{ServeBenchReport, ServeSweepPoint};
use waffle_core::session_report_json;
use waffle_mem::{AccessKind, ObjectId, SiteId, SiteRegistry};
use waffle_sim::{SimTime, ThreadId};
use waffle_trace::{
    compact_segments, encode_frame, read_frame, ClockId, ClockPool, Frame, SegmentReader,
    SessionIndexBuilder, Trace, TraceEvent, TraceIndex,
};
use waffle_vclock::ClockSnapshot;

/// Objects the events round-robin over (the shardable dimension).
const OBJECTS: u64 = 4096;
/// Interned chain snapshots; coprime with [`OBJECTS`] so window pairs
/// cycle through distinct (but bounded) clock-pair keys.
const CHAIN_CLOCKS: u64 = 509;
/// Entries per chain snapshot — wide clocks keep the pruning comparison
/// honest for a many-thread application.
const CHAIN_ENTRIES: u32 = 64;
/// Events per wire `Events` frame (the client batch size).
const BATCH: usize = 4096;
/// Generation seal threshold, matching the `waffle serve` default.
const SEAL_EVENTS: usize = 64 << 10;
/// Resident budget handed to the finish-time interference pass.
const FINISH_BUDGET: u64 = 64 << 20;

/// Heap-byte counter wrapping the system allocator (peak-RSS proxy; the
/// workspace has no allocator introspection deps).
mod alloc_counter {
    #![allow(unsafe_code)] // GlobalAlloc is inherently unsafe; bench-only code.

    use std::alloc::{GlobalAlloc, Layout, System};
    use std::sync::atomic::{AtomicU64, Ordering};

    static LIVE: AtomicU64 = AtomicU64::new(0);
    static PEAK: AtomicU64 = AtomicU64::new(0);

    /// Pass-through allocator that tracks live and peak heap bytes.
    pub struct CountingAlloc;

    unsafe impl GlobalAlloc for CountingAlloc {
        unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
            let p = System.alloc(layout);
            if !p.is_null() {
                let live =
                    LIVE.fetch_add(layout.size() as u64, Ordering::Relaxed) + layout.size() as u64;
                PEAK.fetch_max(live, Ordering::Relaxed);
            }
            p
        }

        unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
            System.dealloc(ptr, layout);
            LIVE.fetch_sub(layout.size() as u64, Ordering::Relaxed);
        }
    }

    /// Restarts the peak watermark from the current live total.
    pub fn reset_peak() {
        PEAK.store(LIVE.load(Ordering::Relaxed), Ordering::Relaxed);
    }

    /// Peak live heap bytes since the last [`reset_peak`].
    pub fn peak() -> u64 {
        PEAK.load(Ordering::Relaxed)
    }
}

#[global_allocator]
static ALLOC: alloc_counter::CountingAlloc = alloc_counter::CountingAlloc;

/// Bounded-size stream source: the site registry, clock pool, and
/// per-object site trios are materialized once (O(`OBJECTS`)); events are
/// generated on demand, so a 4×-longer session costs no extra resident
/// memory on the client side of the measurement.
struct EventSource {
    sites: SiteRegistry,
    clocks: ClockPool,
    trios: Vec<(SiteId, SiteId, SiteId)>,
    chain: Vec<ClockId>,
    conc: Vec<ClockId>,
}

impl EventSource {
    fn new() -> Self {
        let mut sites = SiteRegistry::new();
        let mut trios = Vec::with_capacity(OBJECTS as usize);
        for o in 0..OBJECTS {
            trios.push((
                sites.register(&format!("o{o}.init"), AccessKind::Init),
                sites.register(&format!("o{o}.use"), AccessKind::Use),
                sites.register(&format!("o{o}.dispose"), AccessKind::Dispose),
            ));
        }
        let mut clocks = ClockPool::new();
        let chain: Vec<_> = (0..CHAIN_CLOCKS)
            .map(|j| {
                clocks.intern(ClockSnapshot::from_entries(
                    (0..CHAIN_ENTRIES).map(|t| (ThreadId(100 + t), (j + 1) * 8 + t as u64)),
                ))
            })
            .collect();
        let conc: Vec<_> = (0..4)
            .map(|t| clocks.intern(ClockSnapshot::from_entries([(ThreadId(t), 1)])))
            .collect();
        Self { sites, clocks, trios, chain, conc }
    }

    /// Event `i`: object `i % OBJECTS` at `i+1` µs, cycling thread and
    /// access kind per round (`Init, Use, Use, Dispose`); ordinary
    /// objects carry chain snapshots, the `obj % 1024 == 0` objects carry
    /// single-entry concurrent snapshots and contribute the candidates.
    fn event(&self, i: u64) -> TraceEvent {
        let obj = i % OBJECTS;
        let round = i / OBJECTS;
        let lane = (round % 4) as usize;
        let trio = self.trios[obj as usize];
        let (site, kind) = match lane {
            0 => (trio.0, AccessKind::Init),
            1 | 2 => (trio.1, AccessKind::Use),
            _ => (trio.2, AccessKind::Dispose),
        };
        TraceEvent {
            time: SimTime::from_us(i + 1),
            thread: ThreadId(lane as u32),
            site,
            obj: ObjectId(obj as u32),
            kind,
            dyn_index: round,
            clock: if obj.is_multiple_of(1024) {
                self.conc[lane]
            } else {
                self.chain[(i % CHAIN_CLOCKS) as usize]
            },
        }
    }

    /// Site definitions in registration order, as a `Sites` frame carries
    /// them.
    fn site_defs(&self) -> Vec<(String, AccessKind)> {
        self.sites.iter().map(|(_, info)| (info.name.clone(), info.kind)).collect()
    }

    /// Materializes the whole stream as a [`Trace`] for the batch
    /// reference analysis.
    fn trace(&self, n: u64) -> Trace {
        Trace {
            workload: format!("bench.serve.{n}"),
            sites: self.sites.clone(),
            events: (0..n).map(|i| self.event(i)).collect(),
            forks: vec![],
            clocks: self.clocks.clone(),
            end_time: SimTime::from_us(n + 2),
        }
    }
}

/// δ covering the three nearest same-object successors (spaced `OBJECTS`
/// µs apart), so the sweep visits ~3 window pairs per event.
fn config() -> AnalyzerConfig {
    AnalyzerConfig {
        delta: SimTime::from_us(OBJECTS * 7 / 2),
        ..AnalyzerConfig::default()
    }
}

/// Encodes a frame and decodes it back — the wire-codec cost of the
/// socket path, without the socket.
fn roundtrip(frame: &Frame) -> Frame {
    let bytes = encode_frame(frame).expect("frame encodes");
    read_frame(&mut &bytes[..])
        .expect("frame decodes")
        .expect("frame present")
}

/// One streamed session's measurements.
struct StreamRun {
    /// Wall seconds of the streaming loop (decode, push, seal, absorb).
    ingest_secs: f64,
    /// Wall seconds including compaction, interference, and the report.
    total_secs: f64,
    /// The finished session report JSON.
    report: String,
    /// Generations the session sealed.
    generations: u32,
    /// Peak live heap bytes during the streaming loop.
    ingest_peak: u64,
}

/// Streams `n` generated events through the full serve-side session path
/// with `jobs = 1`, exactly as one `waffle serve` worker handles them.
fn streamed_session(src: &EventSource, n: u64, scratch: &Path, tag: &str) -> StreamRun {
    let dir = scratch.join(format!("session-{tag}"));
    std::fs::create_dir_all(&dir).expect("session dir");
    alloc_counter::reset_peak();
    let t0 = Instant::now();

    let Frame::Hello { workload } = roundtrip(&Frame::Hello {
        workload: format!("bench.serve.{n}"),
    }) else {
        unreachable!("Hello round-trips")
    };
    let mut b = SessionIndexBuilder::new(workload);
    let Frame::Sites(defs) = roundtrip(&Frame::Sites(src.site_defs())) else {
        unreachable!("Sites round-trips")
    };
    b.add_sites(&defs).expect("site table streams");
    let snaps = src.clocks.snapshots();
    if snaps.len() > 1 {
        let Frame::Clocks(snaps) = roundtrip(&Frame::Clocks(snaps[1..].to_vec())) else {
            unreachable!("Clocks round-trips")
        };
        b.add_clocks(snaps).expect("clock pool streams");
    }

    let mut inc = IncrementalAnalysis::new(config(), SimTime::from_ms(1));
    let mut generations: Vec<PathBuf> = Vec::new();
    let seal = |b: &mut SessionIndexBuilder,
                    inc: &mut IncrementalAnalysis,
                    generations: &mut Vec<PathBuf>| {
        let path = dir.join(format!("gen-{}.wseg", generations.len()));
        let out = b.seal(&path).expect("generation seals");
        inc.absorb(&out.mem, &out.tsv, b.clocks(), b.last_time(), 1);
        generations.push(path);
    };

    let mut i = 0u64;
    while i < n {
        let hi = (i + BATCH as u64).min(n);
        let Frame::Events(evs) =
            roundtrip(&Frame::Events((i..hi).map(|k| src.event(k)).collect()))
        else {
            unreachable!("Events round-trips")
        };
        b.push_batch(evs).expect("stream is time-ordered");
        if b.pending_events() >= SEAL_EVENTS {
            seal(&mut b, &mut inc, &mut generations);
        }
        i = hi;
    }
    let Frame::Finish { end_time } = roundtrip(&Frame::Finish {
        end_time: SimTime::from_us(n + 2),
    }) else {
        unreachable!("Finish round-trips")
    };
    b.declare_end_time(end_time);
    if b.pending_events() > 0 || generations.is_empty() {
        seal(&mut b, &mut inc, &mut generations);
    }
    let ingest_peak = alloc_counter::peak();
    let ingest_secs = t0.elapsed().as_secs_f64();

    let compacted = dir.join("session.wseg");
    compact_segments(&generations, &compacted).expect("generations compact");
    let mut reader = SegmentReader::open(&compacted).expect("compacted opens");
    let (plan, tsv) = inc
        .finish(b.workload(), Some(&mut reader), FINISH_BUDGET)
        .expect("incremental finish");
    let report = session_report_json(&plan, &tsv).expect("report serializes");
    let total_secs = t0.elapsed().as_secs_f64();
    let run = StreamRun {
        ingest_secs,
        total_secs,
        report,
        generations: b.generations(),
        ingest_peak,
    };
    std::fs::remove_dir_all(&dir).ok();
    run
}

fn main() {
    let n: u64 = std::env::var("WAFFLE_SERVE_EVENTS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(2_000_000);
    assert!(n >= 100_000, "WAFFLE_SERVE_EVENTS must be at least 100000");
    let min_rate: f64 = std::env::var("WAFFLE_SERVE_MIN_RATE")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1_000_000.0);
    let scratch = std::env::temp_dir().join(format!("waffle-serve-bench-{}", std::process::id()));
    std::fs::create_dir_all(&scratch).expect("scratch dir");

    // ---- Batch reference over the same stream, for byte-identity. ----
    println!("generating the {n}-event batch reference…");
    let src = EventSource::new();
    let config = config();
    let trace = src.trace(n);
    let plan_ref = analyze_jobs(&trace, &config, 1);
    assert!(
        !plan_ref.candidates.is_empty(),
        "the synthetic stream must produce candidates or the bench is vacuous"
    );
    let tsv_ref = analyze_tsv_indexed(&TraceIndex::build(&trace), config.delta, SimTime::from_ms(1), 1);
    let want = session_report_json(&plan_ref, &tsv_ref).expect("report serializes");
    drop(plan_ref);
    drop(trace);

    // ---- Headline: full-size streamed session (trace dropped, so the
    // ingest peak is honest). ----
    let full = streamed_session(&src, n, &scratch, "full");
    let report_matches_batch = full.report == want;
    assert!(
        report_matches_batch,
        "streamed session report diverged from the batch report"
    );
    let ingest_rate = n as f64 / full.ingest_secs;
    println!(
        "ingest: {:.2}s ({:.0} events/sec; {:.0} end-to-end), {} generations, peak {:.1} MiB",
        full.ingest_secs,
        ingest_rate,
        n as f64 / full.total_secs,
        full.generations,
        full.ingest_peak as f64 / (1 << 20) as f64
    );

    // ---- Memory sweep: same shape at a quarter of the size; the peak
    // must be seal-threshold-shaped, not session-shaped. ----
    let quarter = streamed_session(&src, n / 4, &scratch, "quarter");
    println!(
        "ingest {}: {:.2}s ({:.0} events/sec), peak {:.1} MiB",
        n / 4,
        quarter.ingest_secs,
        (n / 4) as f64 / quarter.ingest_secs,
        quarter.ingest_peak as f64 / (1 << 20) as f64
    );
    let sweep = vec![
        ServeSweepPoint {
            events: n / 4,
            ingest_events_per_sec: (n / 4) as f64 / quarter.ingest_secs,
            ingest_peak_alloc_bytes: quarter.ingest_peak,
            generations: quarter.generations,
        },
        ServeSweepPoint {
            events: n,
            ingest_events_per_sec: ingest_rate,
            ingest_peak_alloc_bytes: full.ingest_peak,
            generations: full.generations,
        },
    ];
    let peak_min = sweep.iter().map(|p| p.ingest_peak_alloc_bytes).min().unwrap().max(1);
    let peak_max = sweep.iter().map(|p| p.ingest_peak_alloc_bytes).max().unwrap();
    let sweep_peak_ratio = peak_max as f64 / peak_min as f64;
    std::fs::remove_dir_all(&scratch).ok();

    let report = ServeBenchReport {
        events: n,
        batch_events: BATCH as u64,
        seal_events: SEAL_EVENTS as u64,
        generations: full.generations,
        ingest_events_per_sec: ingest_rate,
        end_to_end_events_per_sec: n as f64 / full.total_secs,
        min_ingest_rate_floor: min_rate,
        report_matches_batch,
        sweep,
        sweep_peak_ratio,
        available_parallelism: std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1),
    };

    assert!(
        report.ingest_events_per_sec >= min_rate,
        "sustained ingest is {:.0} events/sec (floor {min_rate:.0})",
        report.ingest_events_per_sec
    );
    assert!(
        report.sweep_peak_ratio <= 1.25,
        "streamed ingest peak heap is not flat: max/min = {:.2} across a 4x growth sweep",
        report.sweep_peak_ratio
    );

    let path = ServeBenchReport::default_path();
    report.write(&path).expect("write serve bench report");
    println!("wrote {}", path.display());
}
