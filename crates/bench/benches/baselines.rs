//! Pre-TSVD baselines (Table 1's left columns) against Waffle: one delay
//! per run (RaceFuzzer/CTrigger-style) and unguided random sleeping
//! (DataCollider-style), measured as runs-to-exposure on three bugs.

use waffle_analysis::{analyze, AnalyzerConfig};
use waffle_apps::{all_apps, bug};
use waffle_core::{Detector, Tool};
use waffle_inject::RandomSleepPolicy;
use waffle_sim::time::ms;
use waffle_sim::{SimConfig, Simulator};
use waffle_trace::TraceRecorder;

fn runs_single_delay(w: &waffle_sim::Workload, cap: u32) -> Option<u32> {
    let det = Detector::with_config(
        Tool::SingleDelay { delay: ms(100) },
        waffle_core::DetectorConfig {
            max_detection_runs: cap,
            ..Default::default()
        },
    );
    det.detect(w, 1).exposed.map(|r| r.total_runs)
}

fn runs_random_sleep(w: &waffle_sim::Workload, cap: u32) -> Option<u32> {
    for run in 1..=cap as u64 {
        let mut p = RandomSleepPolicy::new(20, ms(100), run);
        let r = Simulator::run(w, SimConfig::with_seed(run), &mut p);
        if r.manifested() && !r.delays.is_empty() {
            return Some(run as u32);
        }
    }
    None
}

fn main() {
    println!("Baselines: runs to exposure (cap 50)");
    println!(
        "{:>6} {:<30} | {:>8} | {:>13} | {:>13}",
        "bug", "input", "Waffle", "single-delay", "random-sleep"
    );
    for id in [1u32, 10, 11] {
        let spec = bug(id).unwrap();
        let app = all_apps().into_iter().find(|a| a.name == spec.app).unwrap();
        let w = app.bug_workload(id).unwrap().clone();
        let waffle = Detector::new(Tool::waffle())
            .detect(&w, 1)
            .exposed
            .map(|r| r.total_runs);
        let single = runs_single_delay(&w, 50);
        let random = runs_random_sleep(&w, 50);
        let fmt = |r: Option<u32>| r.map(|v| v.to_string()).unwrap_or("-".into());
        println!(
            "{:>6} {:<30} | {:>8} | {:>13} | {:>13}",
            format!("Bug-{id}"),
            spec.test_name,
            fmt(waffle),
            fmt(single),
            fmt(random)
        );
    }
    // Candidate-count context: single-delay sampling needs one run per
    // candidate in expectation.
    let spec = bug(11).unwrap();
    let app = all_apps().into_iter().find(|a| a.name == spec.app).unwrap();
    let w = app.bug_workload(11).unwrap().clone();
    let mut rec = TraceRecorder::new(&w);
    let _ = Simulator::run(&w, SimConfig::with_seed(1), &mut rec);
    let plan = analyze(&rec.into_trace(), &AnalyzerConfig::default());
    println!(
        "\n(Bug-11's plan has {} delay locations: sampling one per run needs that many\n\
         runs in expectation, which is the §4.4 argument against the naive scheme.)",
        plan.delay_len.len()
    );
}
