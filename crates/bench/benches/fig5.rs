//! Figure 5: the interference window.
//!
//! A delay before ℓ1 in Thread 1 (aiming to push ℓ1 past ℓ2) is cancelled
//! by a concurrent delay at ℓ* in ℓ2's thread — provided ℓ* executes close
//! enough to the window that its delay actually pushes ℓ2. The sweep moves
//! ℓ*'s execution time: early ℓ* delays are absorbed by the thread's idle
//! wait (negligible interference), late ones shift the dispose and cancel
//! the injection.

use waffle_mem::{AccessKind, ObjectId};
use waffle_sim::time::{ms, us};
use waffle_sim::{
    AccessCtx, Monitor, PreAction, SimConfig, Simulator, Workload, WorkloadBuilder,
};

/// Worker (Thd1) uses the victim at 40 ms. Main (Thd2) touches a helper
/// object at `lstar_ms`, idles until its 45 ms timer tick, then disposes
/// the victim at 55 ms. Delaying the victim's use by 25 ms exposes the
/// use-after-free; a concurrent 25 ms delay at the helper access cancels
/// it only if it extends past the timer tick.
fn workload(lstar_ms: u64) -> Workload {
    let mut b = WorkloadBuilder::new("fig5");
    let victim = b.object("victim");
    let helper = b.object("helper");
    let started = b.event("s");
    let tick = b.event("tick");
    let timer = b.script("timer", move |s| {
        s.wait(started).pad(ms(45)).signal(tick);
    });
    let worker = b.script("worker", move |s| {
        s.wait(started).pad(ms(40)).use_(victim, "W.victim:2", us(50));
    });
    let main = b.script("main", move |s| {
        s.init(victim, "M.init:0", us(10))
            .init(helper, "M.init2:0", us(10))
            .fork(timer)
            .fork(worker)
            .signal(started)
            .pad(ms(lstar_ms))
            .use_(helper, "M.helper:5", us(50))
            .wait(tick)
            .pad(ms(10))
            .dispose(victim, "M.dispose:9", us(50))
            .join_children();
    });
    b.main(main);
    b.build()
}

struct Delays {
    both: bool,
}

impl Monitor for Delays {
    fn on_access_pre(&mut self, ctx: &AccessCtx<'_>) -> PreAction {
        if ctx.kind != AccessKind::Use {
            return PreAction::Proceed;
        }
        if ctx.obj == ObjectId(0) {
            // The victim's use: the bug-exposing delay (gap is 15 ms).
            return PreAction::Delay(ms(25));
        }
        if self.both {
            // The interfering delay at ℓ*.
            return PreAction::Delay(ms(25));
        }
        PreAction::Proceed
    }
}

fn main() {
    println!("Figure 5: interference window sweep (victim use at 40ms, dispose at 55ms,");
    println!("          victim delay 25ms; interfering delay 25ms at l* in the dispose thread)");
    println!(
        "{:>12} | {:>18} | {:>18}",
        "l*(ms)", "victim-delay only", "both delays"
    );
    for lstar in [0u64, 5, 10, 15, 20, 25, 30, 40, 44] {
        let w = workload(lstar);
        let solo = Simulator::run(
            &w,
            SimConfig::with_seed(0).deterministic(),
            &mut Delays { both: false },
        );
        let both = Simulator::run(
            &w,
            SimConfig::with_seed(0).deterministic(),
            &mut Delays { both: true },
        );
        println!(
            "{:>12} | {:>18} | {:>18}",
            lstar,
            if solo.manifested() { "EXPOSED" } else { "clean" },
            if both.manifested() {
                "EXPOSED"
            } else {
                "cancelled"
            }
        );
    }
    println!();
    println!("(Paper shape: an interfering delay executing shortly before or inside the");
    println!(" window cancels the injection; earlier ones are absorbed by idle time and");
    println!(" the bug is still exposed.)");
}
