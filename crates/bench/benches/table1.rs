//! Table 1: the design-decision matrix, mapped to this crate's tools.

fn main() {
    println!("Table 1: design decisions of active delay injection tools");
    println!("(y = yes, n = no, p = partial, - = not applicable)\n");
    let rows = [
        ("", "RaceFuzzer", "CTrigger", "RaceMob", "DataCollider", "Tsvd", "Waffle"),
        ("synchronization analysis?", "y", "y", "y", "n", "n", "p"),
        ("synchronization inference?", "n", "n", "n", "n", "y", "y"),
        ("identify during injection runs?", "n", "n", "n", "n", "y", "n"),
        ("fixed-length delay?", "y", "y", "n", "y", "y", "n"),
        ("avoids delay interference?", "-", "-", "-", "-", "n", "y"),
        ("sampled candidate locations?", "y", "y", "y", "y", "n", "n"),
        ("probabilistic injection?", "n", "n", "y", "y", "y", "y"),
    ];
    for (i, r) in rows.iter().enumerate() {
        println!(
            "{:<34} {:>10} {:>9} {:>8} {:>13} {:>5} {:>7}",
            r.0, r.1, r.2, r.3, r.4, r.5, r.6
        );
        if i == 0 {
            println!("{}", "-".repeat(94));
        }
    }
    println!("\nImplemented in this repository:");
    println!("  Tsvd              -> waffle_inject::TsvdPolicy (thread-safety violations)");
    println!("  Waffle            -> waffle_core::Tool::waffle()");
    println!("  WaffleBasic (§3)  -> waffle_core::Tool::waffle_basic()");
    println!("  sampled-location  -> waffle_inject::SingleDelayPolicy (RaceFuzzer/CTrigger-style)");
    println!("  unguided          -> waffle_inject::RandomSleepPolicy (DataCollider-style)");
    println!("  ablations (Tbl 7) -> Tool::waffle_no_parent_child / waffle_no_prep /");
    println!("                       waffle_fixed_delay / waffle_no_interference");
    println!("  extension (§8)    -> waffle_inject::WaffleTsvPolicy (plan-guided TSV)");
}
