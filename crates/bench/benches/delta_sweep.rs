//! Sensitivity of the near-miss window δ (fixed at 100 ms in the paper,
//! inherited from TSVD): sweeping it shows the candidate-count/coverage
//! trade-off that motivates the default.

use waffle_analysis::{analyze, AnalyzerConfig};
use waffle_apps::{all_apps, all_bugs};
use waffle_sim::time::ms;
use waffle_sim::{SimConfig, SimTime, Simulator};
use waffle_trace::TraceRecorder;

fn main() {
    println!("Near-miss window sensitivity (candidates across all inputs; bug coverage)");
    println!(
        "{:>10} | {:>16} | {:>22}",
        "delta(ms)", "candidates", "bug pairs still in S"
    );
    for delta_ms in [1u64, 5, 20, 50, 100, 500] {
        let cfg = AnalyzerConfig {
            delta: SimTime::from_ms(delta_ms),
            ..AnalyzerConfig::default()
        };
        let mut candidates = 0usize;
        for app in all_apps() {
            for t in &app.tests {
                let mut rec = TraceRecorder::new(&t.workload);
                let _ = Simulator::run(&t.workload, SimConfig::with_seed(1), &mut rec);
                candidates += analyze(&rec.into_trace(), &cfg).candidates.len();
            }
        }
        // Coverage: does each bug input still carry a candidate at the
        // seeded racing site?
        let mut covered = 0;
        for spec in all_bugs() {
            let app = all_apps().into_iter().find(|a| a.name == spec.app).unwrap();
            let w = app.bug_workload(spec.id).unwrap().clone();
            let mut rec = TraceRecorder::new(&w);
            let _ = Simulator::run(&w, SimConfig::with_seed(1), &mut rec);
            let plan = analyze(&rec.into_trace(), &cfg);
            if !plan.candidates.is_empty() {
                covered += 1;
            }
        }
        println!(
            "{:>10} | {:>16} | {:>19}/18",
            delta_ms, candidates, covered
        );
    }
    println!();
    println!("(Shape: tiny windows lose the long-gap bugs (40-60ms races); huge windows");
    println!(" multiply the candidate set without adding coverage — δ = 100 ms sits at the");
    println!(" knee, which is why the paper keeps TSVD's default.)");
    let _ = ms(1);
}
