//! Table 4: detection results from Waffle and WaffleBasic on the 18 bugs.
//!
//! Reports, per bug: number of detection runs needed (majority over the
//! repetitions, as in §6.1) and the end-to-end detection slowdown versus
//! the uninstrumented bug-triggering input. "-" means the tool failed to
//! expose the bug within 50 runs. Repetitions default to the paper's 15;
//! override with WAFFLE_REPS. The 18×2 grid is fanned over WAFFLE_JOBS
//! workers (default: all cores) — the numbers are identical at any count.

use waffle_apps::all_bugs;
use waffle_bench::{bug_rows, engine_from_env};

fn reps() -> u32 {
    std::env::var("WAFFLE_REPS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(15)
}

fn main() {
    let reps = reps();
    println!("Table 4: detection results ({reps} repetitions, 50-run cap for WaffleBasic)");
    println!(
        "{:<6} {:<22} {:>6} {:>9} | {:>11} {:>11} | {:>11} {:>11}",
        "Bug", "App", "Known", "Base(ms)", "Basic runs", "Basic slow", "Waffle runs", "Waffle slow"
    );
    let fmt_r = |r: Option<u32>| r.map(|v| v.to_string()).unwrap_or_else(|| "-".into());
    let fmt_s = |s: Option<f64>| s.map(|v| format!("{v:.1}x")).unwrap_or_else(|| "-".into());
    let rows = bug_rows(&all_bugs(), reps, 50, &engine_from_env());
    for row in rows {
        let spec = &row.spec;
        let basic_detected = row.basic.detected();
        let waffle_detected = row.waffle.detected();
        println!(
            "Bug-{:<3} {:<22} {:>6} {:>9} | {:>11} {:>11} | {:>11} {:>11}   (paper: B={}, W={})",
            spec.id,
            spec.app,
            if spec.known { "yes" } else { "no" },
            row.base.as_ms(),
            if basic_detected {
                fmt_r(row.basic.reported_runs())
            } else {
                "-".into()
            },
            if basic_detected {
                fmt_s(row.basic.median_slowdown)
            } else {
                "-".into()
            },
            if waffle_detected {
                fmt_r(row.waffle.reported_runs())
            } else {
                "-".into()
            },
            if waffle_detected {
                fmt_s(row.waffle.median_slowdown)
            } else {
                "-".into()
            },
            fmt_r(spec.paper.basic_runs),
            spec.paper.waffle_runs,
        );
    }
}
