//! Run-by-run policy debugger for one bug (tuning aid, not a bench).
//!
//! Usage: `debug_bug <bug-id> <waffle|basic> [attempt-seed] [max-runs]`

use waffle_analysis::{analyze, AnalyzerConfig};
use waffle_apps::all_apps;
use waffle_inject::{BasicState, DecayState, WaffleBasicPolicy, WafflePolicy};
use waffle_sim::{NullMonitor, SimConfig, SimTime, Simulator};
use waffle_trace::TraceRecorder;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let id: u32 = args[1].parse().unwrap();
    let tool = args.get(2).map(|s| s.as_str()).unwrap_or("waffle").to_owned();
    let attempt: u64 = args.get(3).and_then(|s| s.parse().ok()).unwrap_or(1);
    let max_runs: u32 = args.get(4).and_then(|s| s.parse().ok()).unwrap_or(10);
    let app = all_apps()
        .into_iter()
        .find(|a| a.bugs.iter().any(|b| b.id == id))
        .unwrap();
    let w = app.bug_workload(id).unwrap().clone();
    let seed_of = |run: u64| attempt.wrapping_mul(10_000).wrapping_add(run);
    let base = Simulator::run(
        &w,
        SimConfig {
            seed: seed_of(0),
            ..SimConfig::default()
        },
        &mut NullMonitor,
    );
    println!("== {} base={} ==", w.name, base.end_time);
    let deadline = Some(base.end_time * 30);
    let cfg = |seed: u64| SimConfig {
        seed,
        timing_noise_pct: 3,
        deadline,
        ..SimConfig::default()
    };
    let dump_run = |tag: &str, r: &waffle_sim::RunResult, w: &waffle_sim::Workload| {
        let mut per_site: std::collections::BTreeMap<&str, (u64, SimTime)> = Default::default();
        for d in &r.delays {
            let e = per_site.entry(w.sites.name(d.site)).or_insert((0, SimTime::ZERO));
            e.0 += 1;
            e.1 += d.dur;
        }
        println!(
            "{tag}: end={} timeout={} manifested={} delays={} overlap={:.2}",
            r.end_time,
            r.timed_out,
            r.manifested(),
            r.delays.len(),
            r.delay_overlap_ratio()
        );
        for (site, (n, tot)) in per_site {
            println!("    {site}: {n} delays, total {tot}");
        }
        for e in &r.exceptions {
            println!(
                "    NRE {} at {} in {} @ {}",
                e.error.kind.label(),
                w.sites.name(e.error.site),
                e.thread,
                e.time
            );
        }
    };
    if tool == "waffle" {
        let mut rec = TraceRecorder::new(&w);
        let prep = Simulator::run(&w, cfg(seed_of(1)), &mut rec);
        println!(
            "prep: end={} manifested={} {:?}",
            prep.end_time,
            prep.manifested(),
            prep.exceptions
        );
        let trace = rec.into_trace();
        for e in trace.events.iter().filter(|e| e.obj == waffle_mem::ObjectId(0)) {
            println!(
                "  ev obj0 {} {} {} @ {} clock={:?}",
                e.thread,
                e.kind,
                w.sites.name(e.site),
                e.time,
                trace.event_clock(e)
            );
        }
        let plan = analyze(&trace, &AnalyzerConfig::default());
        println!("plan: {} candidates, {} interference pairs", plan.candidates.len(), plan.interference.len());
        for c in &plan.candidates {
            println!(
                "    {} [{}] -> {} gap={} obs={}",
                w.sites.name(c.delay_site),
                c.kind.label(),
                w.sites.name(c.other_site),
                c.max_gap,
                c.observations
            );
        }
        for (a, b) in plan.interference.iter() {
            println!("    I: {} <-> {}", w.sites.name(a), w.sites.name(b));
        }
        let mut decay = DecayState::default();
        for run in 0..max_runs {
            let mut p = WafflePolicy::new(plan.clone(), decay, seed_of(2 + run as u64));
            let r = Simulator::run(&w, cfg(seed_of(2 + run as u64)), &mut p);
            let stats = p.stats();
            decay = p.into_decay();
            println!(
                "run {}: injected={} skipP={} skipI={}",
                run + 1,
                stats.injected,
                stats.skipped_probability,
                stats.skipped_interference
            );
            dump_run(&format!("run {}", run + 1), &r, &w);
            if r.manifested() {
                break;
            }
        }
    } else {
        let mut state = BasicState::default();
        for run in 0..max_runs {
            state.decay = DecayState::default();
            let mut p = WaffleBasicPolicy::new(state, seed_of(1 + run as u64));
            let r = Simulator::run(&w, cfg(seed_of(1 + run as u64)), &mut p);
            let stats = p.stats();
            state = p.into_state();
            println!(
                "run {}: injected={} added={} removed={} S={} sites",
                run + 1,
                stats.injected,
                stats.pairs_added,
                stats.pairs_removed,
                state.delay_sites()
            );
            for (l1, partners) in &state.candidates {
                for l2 in partners {
                    println!("    S: {} -> {}", w.sites.name(*l1), w.sites.name(*l2));
                }
            }
            dump_run(&format!("run {}", run + 1), &r, &w);
            if r.manifested() && !r.delays.is_empty() {
                break;
            }
        }
    }
}
