//! Fast tuning loop for the Table 4 shape (not a shipped bench target).

use waffle_apps::all_bugs;
use waffle_bench::bug_row;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let only: Option<u32> = args.get(1).and_then(|s| s.parse().ok());
    let attempts: u32 = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(5);
    let max_basic: u32 = args.get(3).and_then(|s| s.parse().ok()).unwrap_or(50);
    println!(
        "{:>3} {:<34} {:>8} | {:>6} {:>5} {:>6} | {:>6} {:>5} {:>6}",
        "bug", "test", "base", "Bруны", "Bexp", "Bslow", "Wruns", "Wexp", "Wslow"
    );
    for spec in all_bugs() {
        if let Some(id) = only {
            if spec.id != id {
                continue;
            }
        }
        let row = bug_row(&spec, attempts, max_basic);
        let fmt_runs = |r: Option<u32>| r.map(|v| v.to_string()).unwrap_or("-".into());
        let fmt_slow = |s: Option<f64>| s.map(|v| format!("{v:.1}")).unwrap_or("-".into());
        println!(
            "{:>3} {:<34} {:>6}ms | {:>6} {:>2}/{:<2} {:>6} | {:>6} {:>2}/{:<2} {:>6}   (paper: B={} W={})",
            spec.id,
            spec.test_name,
            row.base.as_ms(),
            fmt_runs(row.basic.reported_runs()),
            row.basic.exposed_attempts,
            row.basic.attempts,
            fmt_slow(row.basic.median_slowdown),
            fmt_runs(row.waffle.reported_runs()),
            row.waffle.exposed_attempts,
            row.waffle.attempts,
            fmt_slow(row.waffle.median_slowdown),
            fmt_runs(spec.paper.basic_runs),
            spec.paper.waffle_runs,
        );
    }
}
