//! Machine-readable throughput report (`BENCH_core.json`).
//!
//! The `engine_rate` bench target measures the simulator's dispatch-loop
//! rate and the parallel [`ExperimentEngine`]'s attempt throughput, then
//! serializes the results here so the numbers can be tracked across
//! changes without scraping bench stdout.
//!
//! [`ExperimentEngine`]: waffle_core::ExperimentEngine

use std::path::{Path, PathBuf};

use serde::Serialize;
use waffle_telemetry::TelemetryCounters;

/// Throughput of the experiment engine at one worker count.
#[derive(Debug, Clone, Serialize)]
pub struct EngineRate {
    /// Worker count the engine fanned attempts over.
    pub jobs: usize,
    /// Detection attempts completed per wall-clock second.
    pub attempts_per_sec: f64,
    /// Speedup over the sequential (`jobs = 1`) configuration.
    pub speedup_vs_sequential: f64,
}

/// One raw Criterion measurement backing the derived figures.
#[derive(Debug, Clone, Serialize)]
pub struct BenchEntry {
    /// Benchmark name.
    pub name: String,
    /// Mean wall-clock time per iteration, in nanoseconds.
    pub mean_ns: f64,
}

/// The report serialized to `BENCH_core.json`.
#[derive(Debug, Clone, Serialize)]
pub struct BenchReport {
    /// Simulator dispatch-loop throughput: instrumented events per
    /// wall-clock second on the reference workload.
    pub sim_events_per_sec: f64,
    /// Engine throughput per worker count (the `jobs = 1` row first, so
    /// the speedup column reads top-down).
    pub engine: Vec<EngineRate>,
    /// Raw per-benchmark means the figures above were derived from.
    pub benches: Vec<BenchEntry>,
    /// Headline telemetry counters from one sequential reference
    /// detection experiment (fixed seeds): injection-behavior drift shows
    /// up here even when throughput stays flat.
    pub telemetry: TelemetryCounters,
}

impl BenchReport {
    /// Output path: `WAFFLE_BENCH_OUT` when set, else `BENCH_core.json`
    /// in the current directory.
    pub fn default_path() -> PathBuf {
        std::env::var_os("WAFFLE_BENCH_OUT")
            .map(PathBuf::from)
            .unwrap_or_else(|| PathBuf::from("BENCH_core.json"))
    }

    /// Serializes the report as pretty-printed JSON into `path`.
    pub fn write(&self, path: &Path) -> std::io::Result<()> {
        let json = serde_json::to_string_pretty(self)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
        std::fs::write(path, json + "\n")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_serializes_and_round_trips_to_disk() {
        let report = BenchReport {
            sim_events_per_sec: 1_000_000.0,
            engine: vec![
                EngineRate {
                    jobs: 1,
                    attempts_per_sec: 40.0,
                    speedup_vs_sequential: 1.0,
                },
                EngineRate {
                    jobs: 8,
                    attempts_per_sec: 250.0,
                    speedup_vs_sequential: 6.25,
                },
            ],
            benches: vec![BenchEntry {
                name: "sim_events".into(),
                mean_ns: 123.0,
            }],
            telemetry: TelemetryCounters {
                injected: 12,
                ..TelemetryCounters::default()
            },
        };
        let json = serde_json::to_string_pretty(&report).unwrap();
        assert!(json.contains("sim_events_per_sec"));
        assert!(json.contains("speedup_vs_sequential"));
        assert!(json.contains("injected"));
        let dir = std::env::temp_dir().join("waffle_bench_report_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("BENCH_core.json");
        report.write(&path).unwrap();
        let back = std::fs::read_to_string(&path).unwrap();
        assert_eq!(back.trim_end(), json);
        let _ = std::fs::remove_file(&path);
    }
}
