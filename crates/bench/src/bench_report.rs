//! Machine-readable throughput reports (`BENCH_core.json`,
//! `BENCH_analysis.json`).
//!
//! The `engine_rate` bench target measures the simulator's dispatch-loop
//! rate and the parallel [`ExperimentEngine`]'s attempt throughput; the
//! `analysis_rate` target measures the columnar trace index and the fused
//! analysis pipeline against the reference per-pass scanner. Both
//! serialize their results here so the numbers can be tracked across
//! changes without scraping bench stdout.
//!
//! [`ExperimentEngine`]: waffle_core::ExperimentEngine

use std::path::{Path, PathBuf};

use serde::Serialize;
use waffle_telemetry::TelemetryCounters;

/// Throughput of the experiment engine at one worker count.
#[derive(Debug, Clone, Serialize)]
pub struct EngineRate {
    /// Worker count the engine fanned attempts over.
    pub jobs: usize,
    /// Detection attempts completed per wall-clock second.
    pub attempts_per_sec: f64,
    /// Speedup over the sequential (`jobs = 1`) configuration.
    pub speedup_vs_sequential: f64,
}

/// One raw Criterion measurement backing the derived figures.
#[derive(Debug, Clone, Serialize)]
pub struct BenchEntry {
    /// Benchmark name.
    pub name: String,
    /// Mean wall-clock time per iteration, in nanoseconds.
    pub mean_ns: f64,
}

/// The report serialized to `BENCH_core.json`.
#[derive(Debug, Clone, Serialize)]
pub struct BenchReport {
    /// Simulator dispatch-loop throughput: instrumented events per
    /// wall-clock second on the reference workload.
    pub sim_events_per_sec: f64,
    /// Engine throughput per worker count (the `jobs = 1` row first, so
    /// the speedup column reads top-down).
    pub engine: Vec<EngineRate>,
    /// Raw per-benchmark means the figures above were derived from.
    pub benches: Vec<BenchEntry>,
    /// Headline telemetry counters from one sequential reference
    /// detection experiment (fixed seeds): injection-behavior drift shows
    /// up here even when throughput stays flat.
    pub telemetry: TelemetryCounters,
}

impl BenchReport {
    /// Output path: `WAFFLE_BENCH_OUT` when set, else `BENCH_core.json`
    /// in the current directory.
    pub fn default_path() -> PathBuf {
        std::env::var_os("WAFFLE_BENCH_OUT")
            .map(PathBuf::from)
            .unwrap_or_else(|| PathBuf::from("BENCH_core.json"))
    }

    /// Serializes the report as pretty-printed JSON into `path`.
    pub fn write(&self, path: &Path) -> std::io::Result<()> {
        let json = serde_json::to_string_pretty(self)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
        std::fs::write(path, json + "\n")
    }
}

/// Throughput of the fused indexed analysis pipeline at one worker count.
#[derive(Debug, Clone, Serialize)]
pub struct AnalysisRate {
    /// Worker count the object shards were fanned over.
    pub jobs: usize,
    /// Trace events analyzed per wall-clock second, *including* the
    /// index-build cost (the honest end-to-end comparison against the
    /// unindexed scanner, which takes a raw trace).
    pub events_per_sec: f64,
    /// Near-miss window pairs swept per wall-clock second.
    pub pairs_per_sec: f64,
    /// Speedup over the reference unindexed scanner on the same trace.
    pub speedup_vs_unindexed: f64,
}

/// The report serialized to `BENCH_analysis.json`.
#[derive(Debug, Clone, Serialize)]
pub struct AnalysisBenchReport {
    /// Events in the synthetic trace (acceptance floor: ≥ 100 000).
    pub events: u64,
    /// Distinct objects sharing those events (the shardable dimension).
    pub mem_objects: u64,
    /// Distinct interned clock snapshots (dedup works when ≪ `events`).
    pub distinct_clocks: u64,
    /// Near-miss window pairs the sweep visits per analysis pass.
    pub window_pairs: u64,
    /// Columnar index construction rate, events per wall-clock second.
    pub index_build_events_per_sec: f64,
    /// Reference (pre-index) scanner rate, events per wall-clock second.
    pub unindexed_events_per_sec: f64,
    /// Indexed pipeline rates per worker count (`jobs = 1` row first).
    /// Rows with `jobs` above `available_parallelism` cannot speed up —
    /// they exist to witness determinism, not throughput.
    pub indexed: Vec<AnalysisRate>,
    /// Hardware threads available to the bench process; `jobs > this`
    /// rows timeslice a single core.
    pub available_parallelism: usize,
    /// Peak live heap bytes during one unindexed analysis pass, from the
    /// bench's counting allocator (RSS proxy).
    pub peak_alloc_unindexed_bytes: u64,
    /// Peak live heap bytes during one indexed build-plus-analysis pass.
    pub peak_alloc_indexed_bytes: u64,
    /// Raw per-benchmark means the figures above were derived from.
    pub benches: Vec<BenchEntry>,
}

impl AnalysisBenchReport {
    /// Output path: `WAFFLE_BENCH_ANALYSIS_OUT` when set, else
    /// `BENCH_analysis.json` in the current directory.
    pub fn default_path() -> PathBuf {
        std::env::var_os("WAFFLE_BENCH_ANALYSIS_OUT")
            .map(PathBuf::from)
            .unwrap_or_else(|| PathBuf::from("BENCH_analysis.json"))
    }

    /// Serializes the report as pretty-printed JSON into `path`.
    pub fn write(&self, path: &Path) -> std::io::Result<()> {
        let json = serde_json::to_string_pretty(self)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
        std::fs::write(path, json + "\n")
    }
}

/// One size point of the out-of-core growth sweep.
#[derive(Debug, Clone, Serialize)]
pub struct ScaleSweepPoint {
    /// Events in the trace at this size point.
    pub events: u64,
    /// On-disk segment file size in bytes.
    pub file_bytes: u64,
    /// Batches the resident budget split the scan into.
    pub batches: usize,
    /// Out-of-core analysis rate, events per wall-clock second.
    pub events_per_sec: f64,
    /// Peak live heap bytes during the out-of-core pass (counting
    /// allocator; the trace and index are dropped before measuring, so
    /// this is the resident cost of the scan itself).
    pub peak_alloc_bytes: u64,
}

/// Campaign cell throughput at one worker-process count.
#[derive(Debug, Clone, Serialize)]
pub struct WorkerRate {
    /// Concurrent workers claiming cells from the shared directory.
    pub workers: usize,
    /// Grid cells completed (same grid at every worker count).
    pub cells: usize,
    /// Cells completed per wall-clock second across all workers.
    pub cells_per_sec: f64,
    /// Speedup over the single-worker configuration. On a box with fewer
    /// cores than workers this documents the (flat) timeslicing reality
    /// rather than an idealized scaling curve.
    pub speedup_vs_single: f64,
}

/// The report serialized to `BENCH_scale.json`.
///
/// Three claims in one artifact: the indexed scan beats the seed-state
/// unindexed scanner by an order of magnitude on a large trace, the
/// out-of-core sweep's peak heap stays flat as the trace grows 10×, and
/// coordinator-free workers drain a campaign grid at every worker count
/// with byte-identical reports.
#[derive(Debug, Clone, Serialize)]
pub struct ScaleBenchReport {
    /// Events in the headline trace (acceptance floor: ≥ 10 000 000 for
    /// the committed artifact; CI smoke runs use a smaller trace).
    pub events: u64,
    /// Distinct objects sharing those events.
    pub mem_objects: u64,
    /// Near-miss window pairs one analysis pass visits.
    pub window_pairs: u64,
    /// Reference (seed-state) unindexed scanner rate, events/second.
    pub unindexed_events_per_sec: f64,
    /// Fused scan rate over the prebuilt in-memory index, events/second.
    pub indexed_scan_events_per_sec: f64,
    /// Out-of-core scan rate over the on-disk segment file under the
    /// resident budget, events/second (includes segment decode).
    pub ooc_scan_events_per_sec: f64,
    /// `indexed_scan_events_per_sec / unindexed_events_per_sec`.
    pub scan_speedup_vs_unindexed: f64,
    /// Resident-bytes budget the out-of-core measurements ran under.
    pub resident_budget_bytes: u64,
    /// Growth sweep: the same trace shape at 1×, ~3×, and 10× events,
    /// analyzed out-of-core under the fixed budget.
    pub sweep: Vec<ScaleSweepPoint>,
    /// Max-over-min ratio of `peak_alloc_bytes` across the sweep; the
    /// flat-memory claim is `≤ 1.2` (±20%).
    pub sweep_peak_ratio: f64,
    /// Campaign worker scaling (the `workers = 1` row first).
    pub workers: Vec<WorkerRate>,
    /// Hardware threads available to the bench process.
    pub available_parallelism: usize,
}

impl ScaleBenchReport {
    /// Output path: `WAFFLE_BENCH_SCALE_OUT` when set, else
    /// `BENCH_scale.json` in the current directory.
    pub fn default_path() -> PathBuf {
        std::env::var_os("WAFFLE_BENCH_SCALE_OUT")
            .map(PathBuf::from)
            .unwrap_or_else(|| PathBuf::from("BENCH_scale.json"))
    }

    /// Serializes the report as pretty-printed JSON into `path`.
    pub fn write(&self, path: &Path) -> std::io::Result<()> {
        let json = serde_json::to_string_pretty(self)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
        std::fs::write(path, json + "\n")
    }
}

/// One size point of the streamed-ingest memory sweep.
#[derive(Debug, Clone, Serialize)]
pub struct ServeSweepPoint {
    /// Events streamed through the session at this size point.
    pub events: u64,
    /// Sustained ingest rate over the streaming loop (frame decode,
    /// builder push, generation seals, incremental absorbs), events per
    /// wall-clock second.
    pub ingest_events_per_sec: f64,
    /// Peak live heap bytes during the streaming loop (counting
    /// allocator; the finish-time compaction pass is excluded — its
    /// resident cost is governed by the out-of-core budget instead).
    pub ingest_peak_alloc_bytes: u64,
    /// Generations the session sealed.
    pub generations: u32,
}

/// The report serialized to `BENCH_serve.json`.
///
/// Two claims in one artifact: the serve-side hot path (wire frame
/// decode → session index builder → generation seal → incremental
/// absorb → compaction → finish) sustains at least the floor ingest
/// rate while producing a report byte-identical to the batch analyzer,
/// and the streaming loop's peak heap is seal-threshold-shaped — flat
/// as the session grows 4×.
#[derive(Debug, Clone, Serialize)]
pub struct ServeBenchReport {
    /// Events in the headline streamed session.
    pub events: u64,
    /// Events per wire `Events` frame (the client batch size).
    pub batch_events: u64,
    /// Generation seal threshold, in pending events.
    pub seal_events: u64,
    /// Generations the headline session sealed.
    pub generations: u32,
    /// Sustained ingest rate over the headline streaming loop,
    /// events per wall-clock second.
    pub ingest_events_per_sec: f64,
    /// End-to-end session rate including the finish-time compaction,
    /// interference pass, and report serialization.
    pub end_to_end_events_per_sec: f64,
    /// The asserted ingest-rate floor (`WAFFLE_SERVE_MIN_RATE`).
    pub min_ingest_rate_floor: f64,
    /// Whether the streamed report was byte-identical to the batch
    /// analyzer's report over the same trace (asserted true).
    pub report_matches_batch: bool,
    /// Memory sweep: the same stream shape at 1× and 4× events under a
    /// fixed seal threshold.
    pub sweep: Vec<ServeSweepPoint>,
    /// Max-over-min ratio of `ingest_peak_alloc_bytes` across the
    /// sweep; the bounded-ingest claim is `≤ 1.25`.
    pub sweep_peak_ratio: f64,
    /// Hardware threads available to the bench process.
    pub available_parallelism: usize,
}

impl ServeBenchReport {
    /// Output path: `WAFFLE_BENCH_SERVE_OUT` when set, else
    /// `BENCH_serve.json` in the current directory.
    pub fn default_path() -> PathBuf {
        std::env::var_os("WAFFLE_BENCH_SERVE_OUT")
            .map(PathBuf::from)
            .unwrap_or_else(|| PathBuf::from("BENCH_serve.json"))
    }

    /// Serializes the report as pretty-printed JSON into `path`.
    pub fn write(&self, path: &Path) -> std::io::Result<()> {
        let json = serde_json::to_string_pretty(self)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
        std::fs::write(path, json + "\n")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_serializes_and_round_trips_to_disk() {
        let report = BenchReport {
            sim_events_per_sec: 1_000_000.0,
            engine: vec![
                EngineRate {
                    jobs: 1,
                    attempts_per_sec: 40.0,
                    speedup_vs_sequential: 1.0,
                },
                EngineRate {
                    jobs: 8,
                    attempts_per_sec: 250.0,
                    speedup_vs_sequential: 6.25,
                },
            ],
            benches: vec![BenchEntry {
                name: "sim_events".into(),
                mean_ns: 123.0,
            }],
            telemetry: TelemetryCounters {
                injected: 12,
                ..TelemetryCounters::default()
            },
        };
        let json = serde_json::to_string_pretty(&report).unwrap();
        assert!(json.contains("sim_events_per_sec"));
        assert!(json.contains("speedup_vs_sequential"));
        assert!(json.contains("injected"));
        let dir = std::env::temp_dir().join("waffle_bench_report_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("BENCH_core.json");
        report.write(&path).unwrap();
        let back = std::fs::read_to_string(&path).unwrap();
        assert_eq!(back.trim_end(), json);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn analysis_report_serializes_and_round_trips_to_disk() {
        let report = AnalysisBenchReport {
            events: 102_400,
            mem_objects: 64,
            distinct_clocks: 9,
            window_pairs: 250_000,
            index_build_events_per_sec: 40_000_000.0,
            unindexed_events_per_sec: 1_000_000.0,
            indexed: vec![
                AnalysisRate {
                    jobs: 1,
                    events_per_sec: 2_500_000.0,
                    pairs_per_sec: 6_000_000.0,
                    speedup_vs_unindexed: 2.5,
                },
                AnalysisRate {
                    jobs: 2,
                    events_per_sec: 4_400_000.0,
                    pairs_per_sec: 10_000_000.0,
                    speedup_vs_unindexed: 4.4,
                },
            ],
            peak_alloc_unindexed_bytes: 9_000_000,
            peak_alloc_indexed_bytes: 6_000_000,
            available_parallelism: 2,
            benches: vec![BenchEntry {
                name: "analyze_indexed_jobs1".into(),
                mean_ns: 41_000_000.0,
            }],
        };
        let json = serde_json::to_string_pretty(&report).unwrap();
        assert!(json.contains("speedup_vs_unindexed"));
        assert!(json.contains("peak_alloc_indexed_bytes"));
        assert!(json.contains("window_pairs"));
        let dir = std::env::temp_dir().join("waffle_analysis_report_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("BENCH_analysis.json");
        report.write(&path).unwrap();
        let back = std::fs::read_to_string(&path).unwrap();
        assert_eq!(back.trim_end(), json);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn serve_report_serializes_and_round_trips_to_disk() {
        let report = ServeBenchReport {
            events: 2_000_000,
            batch_events: 4096,
            seal_events: 65_536,
            generations: 31,
            ingest_events_per_sec: 2_400_000.0,
            end_to_end_events_per_sec: 1_900_000.0,
            min_ingest_rate_floor: 1_000_000.0,
            report_matches_batch: true,
            sweep: vec![ServeSweepPoint {
                events: 500_000,
                ingest_events_per_sec: 2_500_000.0,
                ingest_peak_alloc_bytes: 18_000_000,
                generations: 8,
            }],
            sweep_peak_ratio: 1.04,
            available_parallelism: 1,
        };
        let json = serde_json::to_string_pretty(&report).unwrap();
        assert!(json.contains("ingest_events_per_sec"));
        assert!(json.contains("report_matches_batch"));
        assert!(json.contains("sweep_peak_ratio"));
        let dir = std::env::temp_dir().join("waffle_serve_report_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("BENCH_serve.json");
        report.write(&path).unwrap();
        let back = std::fs::read_to_string(&path).unwrap();
        assert_eq!(back.trim_end(), json);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn scale_report_serializes_and_round_trips_to_disk() {
        let report = ScaleBenchReport {
            events: 10_000_000,
            mem_objects: 4096,
            window_pairs: 30_000_000,
            unindexed_events_per_sec: 2_000_000.0,
            indexed_scan_events_per_sec: 25_000_000.0,
            ooc_scan_events_per_sec: 18_000_000.0,
            scan_speedup_vs_unindexed: 12.5,
            resident_budget_bytes: 8 << 20,
            sweep: vec![ScaleSweepPoint {
                events: 1_000_000,
                file_bytes: 21_000_000,
                batches: 3,
                events_per_sec: 18_000_000.0,
                peak_alloc_bytes: 20_000_000,
            }],
            sweep_peak_ratio: 1.05,
            workers: vec![WorkerRate {
                workers: 1,
                cells: 6,
                cells_per_sec: 20.0,
                speedup_vs_single: 1.0,
            }],
            available_parallelism: 1,
        };
        let json = serde_json::to_string_pretty(&report).unwrap();
        assert!(json.contains("scan_speedup_vs_unindexed"));
        assert!(json.contains("sweep_peak_ratio"));
        assert!(json.contains("cells_per_sec"));
        let dir = std::env::temp_dir().join("waffle_scale_report_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("BENCH_scale.json");
        report.write(&path).unwrap();
        let back = std::fs::read_to_string(&path).unwrap();
        assert_eq!(back.trim_end(), json);
        let _ = std::fs::remove_file(&path);
    }
}

/// One population × model × bound row of the oracle reduction bench.
#[derive(Debug, Clone, Serialize)]
pub struct OracleBenchRow {
    /// Workload population: `generated` (fixed generator seeds) or
    /// `grid` (the drain-rich independent-object scaling workload).
    pub population: String,
    /// Memory model explored (`sc`, `tso`, `pso`).
    pub model: String,
    /// Preemption bound.
    pub preemption_bound: u32,
    /// Workloads aggregated into this row.
    pub cases: u64,
    /// Frontier states with sleep-set reduction on.
    pub reduced_states: u64,
    /// Frontier states with reduction off (same memo, same visit order).
    pub naive_states: u64,
    /// `naive_states / reduced_states`.
    pub state_ratio: f64,
    /// Executed edges (states + memo hits + revisits) with reduction on.
    pub reduced_edges: u64,
    /// Executed edges with reduction off.
    pub naive_edges: u64,
    /// `naive_edges / reduced_edges`.
    pub edge_ratio: f64,
    /// Edges skipped by sleep-set pruning (reduced run).
    pub sleep_prunes: u64,
    /// Memo-dominated revisits pruned (reduced run).
    pub memo_hits: u64,
    /// Wall-clock nanoseconds for the reduced explorations.
    pub reduced_wall_ns: u64,
    /// Wall-clock nanoseconds for the naive explorations.
    pub naive_wall_ns: u64,
}

/// The report serialized to `BENCH_oracle.json`.
///
/// Every row compares the reduced and naive explorers on identical
/// workloads; the bench asserts verdict identity for every single case
/// before this report is written, so the ratios below are measurements of
/// a *verdict-preserving* optimization. The headline acceptance claim is
/// `headline_state_ratio` (drain-rich grid, TSO, bound 3) `>= 5`, and the
/// allocation probe pins the hot loop's allocation-free claim.
#[derive(Debug, Clone, Serialize)]
pub struct OracleBenchReport {
    /// All population × model × bound rows.
    pub rows: Vec<OracleBenchRow>,
    /// `naive_states / reduced_states` on the grid workload under TSO at
    /// bound 3 — the committed-artifact floor is 5.
    pub headline_state_ratio: f64,
    /// Heap allocation events during one full (naive) grid exploration.
    pub alloc_probe_events: u64,
    /// Frontier states that exploration visited; the allocation-free
    /// claim asserted is `alloc_probe_events < alloc_probe_states / 2`.
    pub alloc_probe_states: u64,
    /// Reduced-vs-naive verdict pairs compared (all equal, or the bench
    /// panicked).
    pub verdicts_checked: u64,
}

impl OracleBenchReport {
    /// Output path: `WAFFLE_BENCH_ORACLE_OUT` when set, else
    /// `BENCH_oracle.json` in the current directory.
    pub fn default_path() -> PathBuf {
        std::env::var_os("WAFFLE_BENCH_ORACLE_OUT")
            .map(PathBuf::from)
            .unwrap_or_else(|| PathBuf::from("BENCH_oracle.json"))
    }

    /// Serializes the report as pretty-printed JSON into `path`.
    pub fn write(&self, path: &Path) -> std::io::Result<()> {
        let json = serde_json::to_string_pretty(self)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
        std::fs::write(path, json + "\n")
    }
}
