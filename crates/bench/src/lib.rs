//! Shared drivers for the table/figure harnesses.
//!
//! Every table and figure of the paper's evaluation section has a bench
//! target in this crate (`cargo bench -p waffle-bench --bench <name>`);
//! this library holds the measurement drivers they share.

pub mod drivers;

pub use drivers::{bug_row, overhead_for_app, BugRow, OverheadRow};
