//! Shared drivers for the table/figure harnesses.
//!
//! Every table and figure of the paper's evaluation section has a bench
//! target in this crate (`cargo bench -p waffle-bench --bench <name>`);
//! this library holds the measurement drivers they share. The harnesses
//! fan their experiment grids over [`waffle_core::ExperimentEngine`]
//! (worker count from `WAFFLE_JOBS`), and the `engine_rate` target writes
//! throughput figures to `BENCH_core.json` via [`bench_report`].

pub mod bench_report;
pub mod drivers;

pub use bench_report::{
    AnalysisBenchReport, AnalysisRate, BenchEntry, BenchReport, EngineRate, OracleBenchReport,
    OracleBenchRow, ScaleBenchReport, ScaleSweepPoint, ServeBenchReport, ServeSweepPoint,
    WorkerRate,
};
pub use drivers::{
    bug_row, bug_rows, engine_from_env, overhead_for_app, overhead_for_app_on, BugRow, OverheadRow,
};
