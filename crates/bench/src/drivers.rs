//! Measurement drivers shared by the bench targets.
//!
//! The table harnesses fan their experiment grids over
//! [`ExperimentEngine`]; the engine keys every attempt by seed, so the
//! printed numbers are identical at any worker count and `WAFFLE_JOBS`
//! only changes wall-clock time.

use waffle_apps::{all_apps, App, BugSpec};
use waffle_core::{Detector, DetectorConfig, ExperimentEngine, ExperimentSummary, GridCell, Tool};
use waffle_sim::{NullMonitor, SimConfig, SimTime, Simulator, Workload};

/// Engine shared by the bench harnesses: `WAFFLE_JOBS` workers when the
/// variable is set, the machine's available parallelism otherwise.
pub fn engine_from_env() -> ExperimentEngine {
    match std::env::var("WAFFLE_JOBS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
    {
        Some(jobs) => ExperimentEngine::new(jobs),
        None => ExperimentEngine::default(),
    }
}

/// The bug-triggering workload for a spec.
fn bug_workload(spec: &BugSpec) -> Workload {
    all_apps()
        .into_iter()
        .find(|a| a.name == spec.app)
        .expect("bug app exists")
        .bug_workload(spec.id)
        .expect("bug workload exists")
        .clone()
}

/// One Table 4 row: both tools on one bug-triggering input.
#[derive(Debug, Clone)]
pub struct BugRow {
    /// The bug description.
    pub spec: BugSpec,
    /// Measured base execution time.
    pub base: SimTime,
    /// WaffleBasic's experiment summary.
    pub basic: ExperimentSummary,
    /// Waffle's experiment summary.
    pub waffle: ExperimentSummary,
}

/// Runs both tools on every bug with the paper's repetition count,
/// fanning the whole `(bug × tool)` grid over the engine's workers.
pub fn bug_rows(
    specs: &[BugSpec],
    attempts: u32,
    max_basic_runs: u32,
    engine: &ExperimentEngine,
) -> Vec<BugRow> {
    let workloads: Vec<Workload> = specs.iter().map(bug_workload).collect();
    let mut cells = Vec::with_capacity(workloads.len() * 2);
    for w in &workloads {
        cells.push(GridCell {
            workload: w.clone(),
            detector: Detector::new(Tool::waffle()),
            attempts,
        });
        cells.push(GridCell {
            workload: w.clone(),
            detector: Detector::with_config(
                Tool::waffle_basic(),
                DetectorConfig {
                    max_detection_runs: max_basic_runs,
                    ..DetectorConfig::default()
                },
            ),
            attempts,
        });
    }
    let mut summaries = engine.run_grid(&cells).into_iter();
    specs
        .iter()
        .zip(&workloads)
        .map(|(spec, w)| {
            let waffle = summaries.next().expect("waffle summary");
            let basic = summaries.next().expect("basic summary");
            BugRow {
                spec: spec.clone(),
                base: base_time(w),
                basic,
                waffle,
            }
        })
        .collect()
}

/// Runs both tools on one bug with the paper's repetition count.
pub fn bug_row(spec: &BugSpec, attempts: u32, max_basic_runs: u32) -> BugRow {
    bug_rows(
        std::slice::from_ref(spec),
        attempts,
        max_basic_runs,
        &ExperimentEngine::new(1),
    )
    .pop()
    .expect("one spec in, one row out")
}

/// Measures the uninstrumented end-to-end time of a workload.
pub fn base_time(w: &Workload) -> SimTime {
    Simulator::run(w, SimConfig::with_seed(0), &mut NullMonitor).end_time
}

/// One Table 5 row: average overhead across all of an app's test inputs.
#[derive(Debug, Clone)]
pub struct OverheadRow {
    /// Application name.
    pub app: &'static str,
    /// Average base time (ms).
    pub base_ms: f64,
    /// WaffleBasic run #1 / #2 overhead (%); `None` = most tests timed out.
    pub basic: Option<(f64, f64)>,
    /// Waffle run #1 (preparation) / #2 (first detection) overhead (%).
    pub waffle: (f64, f64),
    /// Whether a majority of WaffleBasic runs timed out.
    pub basic_timeout: bool,
}

/// Per-run-index overhead percentages for one tool over one app.
pub fn overhead_for_app(app: &App, attempts: u32) -> OverheadRow {
    overhead_for_app_on(app, attempts, &ExperimentEngine::new(1))
}

/// [`overhead_for_app`] with the attempts of each test input fanned over
/// `engine` (same seeds as the sequential path, so the averages match).
pub fn overhead_for_app_on(app: &App, attempts: u32, engine: &ExperimentEngine) -> OverheadRow {
    let mut base_total = 0.0f64;
    let mut w_r1 = Vec::new();
    let mut w_r2 = Vec::new();
    let mut b_r1 = Vec::new();
    let mut b_r2 = Vec::new();
    let mut b_timeouts = 0u32;
    let mut b_runs = 0u32;
    let mut n = 0u32;
    let cfg = DetectorConfig {
        // Overhead measurement: exactly two runs per tool per input.
        max_detection_runs: 2,
        ..DetectorConfig::default()
    };
    let waffle_det = Detector::with_config(Tool::waffle(), cfg.clone());
    let basic_det = Detector::with_config(Tool::waffle_basic(), cfg);
    for t in app.tests.iter() {
        let w = &t.workload;
        let wf_outcomes = engine.run_attempts(&waffle_det, w, attempts);
        let bs_outcomes = engine.run_attempts(&basic_det, w, attempts);
        for (wf, bs) in wf_outcomes.iter().zip(&bs_outcomes) {
            let base = wf.base_time.as_us() as f64;
            if base == 0.0 {
                continue;
            }
            base_total += base / 1_000.0;
            n += 1;
            if let Some(prep) = &wf.prep {
                w_r1.push((prep.time.as_us() as f64 / base - 1.0) * 100.0);
            }
            if let Some(r) = wf.detection_runs.first() {
                w_r2.push((r.time.as_us() as f64 / base - 1.0) * 100.0);
            }
            for (i, r) in bs.detection_runs.iter().take(2).enumerate() {
                b_runs += 1;
                if r.timed_out {
                    b_timeouts += 1;
                }
                let pct = (r.time.as_us() as f64 / base - 1.0) * 100.0;
                if i == 0 {
                    b_r1.push(pct);
                } else {
                    b_r2.push(pct);
                }
            }
        }
    }
    let avg = |v: &[f64]| {
        if v.is_empty() {
            0.0
        } else {
            v.iter().sum::<f64>() / v.len() as f64
        }
    };
    let basic_timeout = b_timeouts * 2 > b_runs;
    OverheadRow {
        app: app.name,
        base_ms: if n == 0 { 0.0 } else { base_total / n as f64 },
        basic: if basic_timeout {
            None
        } else {
            Some((avg(&b_r1), avg(&b_r2)))
        },
        waffle: (avg(&w_r1), avg(&w_r2)),
        basic_timeout,
    }
}
