//! In-house testing workflow: point Waffle at an application's whole
//! multi-threaded test suite and collect every MemOrder bug it exposes.
//!
//! ```sh
//! cargo run --example suite_scan [app-name]
//! ```
//!
//! This is how the paper's evaluation drives the tool (§6.1): every
//! multi-threaded test input runs through preparation + detection, with no
//! bug-specific prior knowledge. Defaults to SSH.Net.

use waffle_repro::apps::all_apps;
use waffle_repro::core::{Detector, DetectorConfig, Tool};

fn main() {
    let wanted = std::env::args().nth(1).unwrap_or_else(|| "SSH.Net".into());
    let Some(app) = all_apps().into_iter().find(|a| a.name == wanted) else {
        eprintln!("unknown app {wanted:?}; available:");
        for a in all_apps() {
            eprintln!("  {}", a.name);
        }
        std::process::exit(1);
    };
    println!(
        "scanning {} ({} multi-threaded test inputs)\n",
        app.name,
        app.tests.len()
    );
    let det = Detector::with_config(
        Tool::waffle(),
        DetectorConfig {
            max_detection_runs: 5,
            ..DetectorConfig::default()
        },
    );
    let mut found = 0;
    for t in &app.tests {
        let outcome = det.detect(&t.workload, 1);
        match &outcome.exposed {
            Some(r) => {
                found += 1;
                println!(
                    "BUG  {:<34} {} at {} (run {}/{}, {:.1}x)",
                    t.workload.name,
                    r.kind.label(),
                    r.site,
                    r.exposed_in_run,
                    r.total_runs,
                    outcome.slowdown()
                );
            }
            None => println!(
                "ok   {:<34} {} runs, {} delays injected",
                t.workload.name,
                outcome.total_runs(),
                outcome.total_delays()
            ),
        }
    }
    println!("\n{found} MemOrder bug(s) exposed across the suite");
}
