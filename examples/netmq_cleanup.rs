//! The paper's Fig. 4b case study (NetMQ issue #814): interfering dynamic
//! instances.
//!
//! ```sh
//! cargo run --example netmq_cleanup
//! ```
//!
//! The `ChkDisposed` site is executed by both the worker (the racing
//! access) and the cleanup thread right before it disposes the poller.
//! WaffleBasic delays both dynamic instances with the same fixed length —
//! the cleanup's delay pushes the disposal along, cancelling the worker's
//! delay — so it only exposes the bug when the probability decay happens
//! to skip the cleanup's instance. Waffle's preparation run records the
//! self-interference pair `(ChkDisposed, ChkDisposed)` in `I`, suppresses
//! the cleanup's delay, and exposes the bug in its first detection run.

use waffle_repro::apps::{all_apps, bug};
use waffle_repro::core::{Detector, DetectorConfig, Tool};

fn main() {
    let spec = bug(11).expect("Bug-11 is NetMQ #814");
    let app = all_apps()
        .into_iter()
        .find(|a| a.name == spec.app)
        .unwrap();
    let workload = app.bug_workload(11).unwrap().clone();
    println!("== {} (issue #{}) ==", workload.name, spec.issue);
    println!("{}\n", spec.summary);

    for (tool, name, budget) in [
        (Tool::waffle_basic(), "WaffleBasic", 15u32),
        (Tool::waffle(), "Waffle", 5),
    ] {
        let det = Detector::with_config(
            tool,
            DetectorConfig {
                max_detection_runs: budget,
                ..DetectorConfig::default()
            },
        );
        let outcome = det.detect(&workload, 1);
        println!("{name}:");
        println!("  base time       : {}", outcome.base_time);
        println!("  runs used       : {}", outcome.total_runs());
        println!(
            "  delays injected : {} (cumulative {})",
            outcome.total_delays(),
            outcome.total_delay_duration()
        );
        match &outcome.exposed {
            Some(r) => println!(
                "  exposed         : {} at {} in run {} ({:.1}x slowdown)\n",
                r.kind.label(),
                r.site,
                r.exposed_in_run,
                outcome.slowdown()
            ),
            None => println!(
                "  exposed         : no — the parallel delays at the two \
                 ChkDisposed instances kept cancelling\n"
            ),
        }
    }
}
