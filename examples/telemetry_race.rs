//! The paper's Fig. 4a case study (ApplicationInsights issue #1106):
//! interfering bugs, with a look inside the analysis.
//!
//! ```sh
//! cargo run --example telemetry_race
//! ```
//!
//! One object carries two bug candidates: a use-before-init (delay the
//! constructor past the handler's use) and a use-after-free (delay the use
//! past the disposal). Exposing either requires delaying one thread while
//! the other runs free; delaying both cancels. This example runs the
//! preparation run and prints the plan — candidates, per-location delay
//! lengths, and the interference set — before letting the detection run
//! expose the bug.

use waffle_repro::analysis::{analyze, AnalyzerConfig};
use waffle_repro::apps::{all_apps, bug};
use waffle_repro::core::{Detector, Tool};
use waffle_repro::sim::{SimConfig, Simulator};
use waffle_repro::trace::TraceRecorder;

fn main() {
    let spec = bug(10).expect("Bug-10 is ApplicationInsights #1106");
    let app = all_apps()
        .into_iter()
        .find(|a| a.name == spec.app)
        .unwrap();
    let workload = app.bug_workload(10).unwrap().clone();
    println!("== {} (issue #{}) ==\n", workload.name, spec.issue);

    // Preparation run: record the delay-free trace.
    let mut recorder = TraceRecorder::new(&workload);
    let prep = Simulator::run(&workload, SimConfig::with_seed(1), &mut recorder);
    let trace = recorder.into_trace();
    println!(
        "preparation run: {} in {} ({} accesses recorded)",
        if prep.manifested() { "MANIFESTED" } else { "clean" },
        prep.end_time,
        trace.events.len()
    );

    // Trace analysis: candidate set S, delay lengths, interference set I.
    let plan = analyze(&trace, &AnalyzerConfig::default());
    println!("\ncandidate set S ({} pairs):", plan.candidates.len());
    for c in &plan.candidates {
        println!(
            "  {{{}, {}}} [{}], gap {}, planned delay {}",
            workload.sites.name(c.delay_site),
            workload.sites.name(c.other_site),
            c.kind.label(),
            c.max_gap,
            plan.delay_for(c.delay_site)
        );
    }
    println!("\ninterference set I ({} pairs):", plan.interference.len());
    for (a, b) in plan.interference.iter() {
        println!(
            "  {} <-> {}",
            workload.sites.name(a),
            workload.sites.name(b)
        );
    }
    println!(
        "\npruned by parent-child analysis: {} of {} near-miss observations",
        plan.stats.pruned_ordered, plan.stats.examined
    );

    // Detection.
    let outcome = Detector::new(Tool::waffle()).detect(&workload, 1);
    match &outcome.exposed {
        Some(r) => println!(
            "\ndetection: exposed {} at {} in run {} of {}",
            r.kind.label(),
            r.site,
            r.exposed_in_run,
            r.total_runs
        ),
        None => println!("\ndetection: not exposed"),
    }
}
