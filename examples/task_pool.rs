//! Task-oriented programs: async-local tracking and a task-race exposure.
//!
//! ```sh
//! cargo run --example task_pool
//! ```
//!
//! The paper's §4.1 notes that .NET task programs need *async-local*
//! storage — state that flows from a spawning context to the task
//! regardless of which pool thread runs it. This example shows (1) the
//! analyzer pruning spawn-ordered candidates only when task clocks are
//! tracked, (2) Waffle exposing a real race between two sibling tasks,
//! and (3) the workload rendered as Graphviz for inspection.

use waffle_repro::analysis::{analyze, AnalyzerConfig};
use waffle_repro::apps::extensions::{task_cancellation_race, task_request_pipeline};
use waffle_repro::core::{Detector, Tool};
use waffle_repro::sim::time::ms;
use waffle_repro::sim::{dot, SimConfig, Simulator};
use waffle_repro::trace::TraceRecorder;

fn main() {
    // 1. Spawn-ordered candidates vanish under async-local tracking.
    let pipeline = task_request_pipeline("example.pipeline", 6, 2);
    for (label, async_local) in [("async-local clocks", true), ("thread-only clocks", false)] {
        let rec = TraceRecorder::new(&pipeline);
        let mut rec = if async_local {
            rec
        } else {
            rec.without_async_local()
        };
        let _ = Simulator::run(&pipeline, SimConfig::with_seed(1), &mut rec);
        let plan = analyze(&rec.into_trace(), &AnalyzerConfig::default());
        println!(
            "{label:<20}: {} candidate pair(s) survive analysis",
            plan.candidates.len()
        );
    }

    // 2. Sibling tasks (concurrent even under async-local clocks) race:
    //    Waffle exposes the poll-vs-cancel use-after-free.
    let racy = task_cancellation_race("example.cancel", ms(8), ms(20));
    let outcome = Detector::new(Tool::waffle()).detect(&racy, 1);
    match &outcome.exposed {
        Some(r) => println!(
            "\nsibling-task race : exposed {} at {} in {} runs",
            r.kind.label(),
            r.site,
            r.total_runs
        ),
        None => println!("\nsibling-task race : not exposed"),
    }

    // 3. Render the racy workload for inspection.
    let graph = dot::to_dot(&racy);
    let path = std::env::temp_dir().join("waffle_task_pool.dot");
    std::fs::write(&path, &graph).expect("write dot file");
    println!(
        "\nworkload graph     : {} ({} lines; render with `dot -Tsvg`)",
        path.display(),
        graph.lines().count()
    );
}
