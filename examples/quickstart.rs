//! Quickstart: model a racy teardown, let Waffle expose it.
//!
//! ```sh
//! cargo run --example quickstart
//! ```
//!
//! The workload models a connection that a worker thread polls while the
//! main thread tears it down — nothing orders the poll against the
//! disposal, but under normal timing the poll always wins. Waffle's
//! preparation run spots the near miss, plans a delay of α·gap at the
//! poll, and the first detection run flips the order.

use waffle_repro::core::{Detector, Tool};
use waffle_repro::sim::time::{ms, us};
use waffle_repro::sim::WorkloadBuilder;

fn main() {
    // 1. Describe the program under test as a workload: objects, threads
    //    (scripts), synchronization, and instrumented heap accesses.
    let mut b = WorkloadBuilder::new("quickstart.connection_teardown");
    let conn = b.object("connection");
    let started = b.event("started");
    let worker = b.script("poller", move |s| {
        s.wait(started)
            .compute(ms(10)) // process a packet batch
            .use_(conn, "Poller.read_socket:42", us(80));
    });
    let main = b.script("main", move |s| {
        s.init(conn, "Client.connect:17", us(200))
            .fork(worker)
            .signal(started)
            .compute(ms(35)) // unrelated shutdown work
            .dispose(conn, "Client.teardown:88", us(100))
            .join_children();
    });
    b.main(main);
    let workload = b.build();

    // 2. Run the full Waffle workflow: preparation run, trace analysis,
    //    then detection runs with plan-guided delay injection.
    let outcome = Detector::new(Tool::waffle()).detect(&workload, 1);

    // 3. Inspect the report.
    println!("workload : {}", outcome.workload);
    println!("base time: {}", outcome.base_time);
    match &outcome.exposed {
        Some(report) => {
            println!("\nMemOrder bug exposed!");
            println!("  class    : {}", report.kind.label());
            println!("  location : {}", report.site);
            println!("  object   : {}", report.obj);
            println!("  run      : {} of {} total runs", report.exposed_in_run, report.total_runs);
            println!("  delays   : {} injected in the exposing run", report.delays_in_run);
            println!("  delayed  : {}", report.delayed_sites.join(", "));
            println!("  slowdown : {:.1}x vs uninstrumented", outcome.slowdown());
        }
        None => println!("\nno bug exposed (try more detection runs)"),
    }
}
